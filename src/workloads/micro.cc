#include "src/workloads/micro.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/guest/guest_kernel.h"
#include "src/sim/simulation.h"

namespace vsched {

// ---------------------------------------------------------------------------
// Hackbench
// ---------------------------------------------------------------------------

// Senders loop: do a little work, post a message into the group mailbox,
// and wake an idle receiver near themselves (pipe-wakeup semantics).
class Hackbench::SenderBehavior : public TaskBehavior {
 public:
  SenderBehavior(Hackbench* app, int group) : app_(app), group_(group) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override {
    Hackbench* app = app_;
    int my_cpu = ctx.task->cpu() >= 0 ? ctx.task->cpu() : 0;
    Work penalty = 0;
    if (reason == RunReason::kBurstComplete) {
      app->group_inbox_[group_].push_back(my_cpu);
      if (!app->group_idle_[group_].empty()) {
        int idx = app->group_idle_[group_].back();
        app->group_idle_[group_].pop_back();
        Task* recv = app->receivers_flat_[idx];
        // Writing into the receiver's buffer bounces its cache lines here.
        if (recv->cpu() >= 0 && recv->cpu() != my_cpu) {
          penalty += ctx.kernel->CommWorkPenalty(recv->cpu(), my_cpu, app->params_.comm_lines / 4);
        }
        ctx.kernel->WakeTask(recv, my_cpu);
      }
    }
    if (!app->running_) {
      return TaskAction::Exit();
    }
    return TaskAction::Run(WorkAtCapacity(kCapacityScale, app->params_.send_work) + penalty);
  }

 private:
  Hackbench* app_;
  int group_;
};

// Receivers drain the group mailbox, paying the transfer cost per message.
class Hackbench::ReceiverBehavior : public TaskBehavior {
 public:
  ReceiverBehavior(Hackbench* app, int group, int flat_index)
      : app_(app), group_(group), flat_index_(flat_index) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override {
    Hackbench* app = app_;
    if (reason == RunReason::kStarted) {
      app->group_idle_[group_].push_back(flat_index_);
      return TaskAction::WaitEvent();
    }
    if (reason == RunReason::kBurstComplete) {
      ++app->messages_done_;
    }
    if (!app->running_) {
      return TaskAction::Exit();
    }
    auto& inbox = app->group_inbox_[group_];
    if (inbox.empty()) {
      app->group_idle_[group_].push_back(flat_index_);
      return TaskAction::WaitEvent();
    }
    int from_cpu = inbox.back();
    inbox.pop_back();
    Work work = WorkAtCapacity(kCapacityScale, app->params_.recv_work);
    int my_cpu = ctx.task->cpu() >= 0 ? ctx.task->cpu() : 0;
    if (from_cpu >= 0 && from_cpu != my_cpu) {
      work += ctx.kernel->CommWorkPenalty(from_cpu, my_cpu, app->params_.comm_lines);
    }
    return TaskAction::Run(work);
  }

 private:
  Hackbench* app_;
  int group_;
  int flat_index_;
};

Hackbench::Hackbench(GuestKernel* kernel, HackbenchParams params)
    : kernel_(kernel), sim_(kernel->sim()), params_(std::move(params)),
      rng_(kernel->sim()->ForkRng()) {}

void Hackbench::Start() {
  VSCHED_CHECK(!running_);
  running_ = true;
  measure_start_ = sim_->now();
  group_receivers_.resize(params_.groups);
  group_inbox_.resize(params_.groups);
  group_idle_.resize(params_.groups);
  for (int g = 0; g < params_.groups; ++g) {
    for (int p = 0; p < params_.pairs_per_group; ++p) {
      int flat = static_cast<int>(receivers_flat_.size());
      behaviors_.push_back(std::make_unique<ReceiverBehavior>(this, g, flat));
      Task* r = kernel_->CreateTask(
          params_.name + "-g" + std::to_string(g) + "r" + std::to_string(p),
          TaskPolicy::kNormal, behaviors_.back().get(), params_.allowed);
      kernel_->StartTask(r);
      group_receivers_[g].push_back(r);
      receivers_flat_.push_back(r);
    }
  }
  for (int g = 0; g < params_.groups; ++g) {
    for (int p = 0; p < params_.pairs_per_group; ++p) {
      behaviors_.push_back(std::make_unique<SenderBehavior>(this, g));
      Task* s = kernel_->CreateTask(
          params_.name + "-g" + std::to_string(g) + "s" + std::to_string(p),
          TaskPolicy::kNormal, behaviors_.back().get(), params_.allowed);
      kernel_->StartTask(s);
      senders_.push_back(s);
    }
  }
}

void Hackbench::Stop() {
  running_ = false;
  for (Task* r : receivers_flat_) {
    kernel_->WakeTask(r);
  }
}

void Hackbench::ResetStats() {
  messages_done_ = 0;
  measure_start_ = sim_->now();
}

WorkloadResult Hackbench::Result() const {
  WorkloadResult r;
  double elapsed = NsToSec(sim_->now() - measure_start_);
  r.completed = messages_done_;
  r.throughput = elapsed > 0 ? static_cast<double>(messages_done_) / elapsed : 0;
  return r;
}

// ---------------------------------------------------------------------------
// Fio
// ---------------------------------------------------------------------------

class Fio::OpBehavior : public TaskBehavior {
 public:
  explicit OpBehavior(Fio* app) : app_(app) {}

  TaskAction Next(TaskContext&, RunReason reason) override {
    Fio* app = app_;
    if (reason == RunReason::kBurstComplete) {
      ++app->ops_done_;
      if (!app->running_) {
        return TaskAction::Exit();
      }
      return TaskAction::Sleep(
          static_cast<TimeNs>(app->rng_.Exponential(static_cast<double>(app->params_.io_latency_mean))));
    }
    if (!app->running_) {
      return TaskAction::Exit();
    }
    return TaskAction::Run(WorkAtCapacity(kCapacityScale, app->params_.cpu_per_op));
  }

 private:
  Fio* app_;
};

Fio::Fio(GuestKernel* kernel, FioParams params)
    : kernel_(kernel), sim_(kernel->sim()), params_(std::move(params)),
      rng_(kernel->sim()->ForkRng()) {}

void Fio::Start() {
  VSCHED_CHECK(!running_);
  running_ = true;
  measure_start_ = sim_->now();
  for (int i = 0; i < params_.threads; ++i) {
    behaviors_.push_back(std::make_unique<OpBehavior>(this));
    Task* t = kernel_->CreateTask(params_.name + "-t" + std::to_string(i), TaskPolicy::kNormal,
                                  behaviors_.back().get(), params_.allowed);
    kernel_->StartTask(t);
    tasks_.push_back(t);
  }
}

void Fio::Stop() { running_ = false; }

void Fio::ResetStats() {
  ops_done_ = 0;
  measure_start_ = sim_->now();
}

WorkloadResult Fio::Result() const {
  WorkloadResult r;
  double elapsed = NsToSec(sim_->now() - measure_start_);
  r.completed = ops_done_;
  r.throughput = elapsed > 0 ? static_cast<double>(ops_done_) / elapsed : 0;
  return r;
}

// ---------------------------------------------------------------------------
// SelfMigratingTask
// ---------------------------------------------------------------------------

class SelfMigratingTask::Behavior : public TaskBehavior {
 public:
  explicit Behavior(SelfMigratingTask* app) : app_(app) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override {
    SelfMigratingTask* app = app_;
    (void)reason;
    if (!app->running_) {
      return TaskAction::Exit();
    }
    if (app->params_.migrate) {
      // Rotate the affinity to the next allowed vCPU (sched_setaffinity on
      // self); the kernel moves the task at this decision point.
      CpuMask all = app->params_.allowed & CpuMask::FirstN(ctx.kernel->num_vcpus());
      int current = ctx.task->cpu() >= 0 ? ctx.task->cpu() : all.First();
      int next = all.NextFrom(current + 1);
      if (next < 0) {
        next = all.First();
      }
      ctx.task->set_allowed(CpuMask::Single(next));
      return TaskAction::Run(WorkAtCapacity(kCapacityScale, app->params_.hop_period));
    }
    return TaskAction::Run(WorkAtCapacity(kCapacityScale, app->params_.hop_period));
  }

 private:
  SelfMigratingTask* app_;
};

SelfMigratingTask::SelfMigratingTask(GuestKernel* kernel, SelfMigratingParams params)
    : kernel_(kernel), sim_(kernel->sim()), params_(std::move(params)) {}

void SelfMigratingTask::Start() {
  VSCHED_CHECK(!running_);
  running_ = true;
  measure_start_ = sim_->now();
  behavior_ = std::make_unique<Behavior>(this);
  task_ = kernel_->CreateTask(params_.name, TaskPolicy::kNormal, behavior_.get(),
                              params_.migrate ? CpuMask(~0ULL) : params_.allowed);
  if (params_.migrate) {
    task_->set_allowed(CpuMask::Single(params_.allowed.First() >= 0 ? params_.allowed.First() : 0));
  }
  kernel_->StartTask(task_);
}

void SelfMigratingTask::Stop() { running_ = false; }

void SelfMigratingTask::ResetStats() {
  exec_at_reset_ = task_ != nullptr ? task_->total_exec_ns() : 0;
  measure_start_ = sim_->now();
}

WorkloadResult SelfMigratingTask::Result() const {
  WorkloadResult r;
  double elapsed = NsToSec(sim_->now() - measure_start_);
  TimeNs exec = task_ != nullptr ? task_->total_exec_ns() - exec_at_reset_ : 0;
  // "Throughput" = achieved vCPU utilization percentage.
  r.throughput = elapsed > 0 ? NsToSec(exec) / elapsed * 100.0 : 0;
  r.completed = static_cast<uint64_t>(exec);
  return r;
}

}  // namespace vsched
