// Micro-workloads: Hackbench (messaging storm), Fio (I/O-bound), and the
// self-migrating CPU-bound program from the Figure 3 motivating experiment.
// Sysbench and Matmul are TaskParallelApp instances (see catalog.cc).
#ifndef SRC_WORKLOADS_MICRO_H_
#define SRC_WORKLOADS_MICRO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/guest/cpumask.h"
#include "src/guest/task.h"
#include "src/sim/rng.h"
#include "src/workloads/workload.h"

namespace vsched {

class GuestKernel;
class Simulation;

// ---------------------------------------------------------------------------
// Hackbench: G groups of S senders and S receivers exchanging messages.
// Stresses wakeups and cross-vCPU communication (IPIs, Fig 13).
// ---------------------------------------------------------------------------

struct HackbenchParams {
  std::string name = "hackbench";
  int groups = 2;
  int pairs_per_group = 4;  // senders == receivers per group
  TimeNs send_work = UsToNs(60);
  TimeNs recv_work = UsToNs(10);
  int comm_lines = 250;
  CpuMask allowed = CpuMask(~0ULL);
};

class Hackbench : public Workload {
 public:
  Hackbench(GuestKernel* kernel, HackbenchParams params);

  const std::string& name() const override { return params_.name; }
  void Start() override;
  void Stop() override;
  void ResetStats() override;
  WorkloadResult Result() const override;

  uint64_t messages_done() const { return messages_done_; }

 private:
  class SenderBehavior;
  class ReceiverBehavior;

  GuestKernel* kernel_;
  Simulation* sim_;
  HackbenchParams params_;
  Rng rng_;
  bool running_ = false;

  std::vector<std::unique_ptr<TaskBehavior>> behaviors_;
  std::vector<std::vector<Task*>> group_receivers_;
  std::vector<std::vector<int>> group_inbox_;  // per group: sender cpus of queued msgs
  std::vector<std::vector<int>> group_idle_;   // per group: idle receiver flat indices
  std::vector<Task*> receivers_flat_;
  std::vector<Task*> senders_;
  uint64_t messages_done_ = 0;
  TimeNs measure_start_ = 0;
};

// ---------------------------------------------------------------------------
// Fio: I/O-bound threads — a tiny CPU burst per operation, then an I/O wait.
// ---------------------------------------------------------------------------

struct FioParams {
  std::string name = "fio";
  int threads = 4;
  TimeNs cpu_per_op = UsToNs(30);
  TimeNs io_latency_mean = UsToNs(400);
  CpuMask allowed = CpuMask(~0ULL);
};

class Fio : public Workload {
 public:
  Fio(GuestKernel* kernel, FioParams params);

  const std::string& name() const override { return params_.name; }
  void Start() override;
  void Stop() override;
  void ResetStats() override;
  WorkloadResult Result() const override;

 private:
  class OpBehavior;

  GuestKernel* kernel_;
  Simulation* sim_;
  FioParams params_;
  Rng rng_;
  bool running_ = false;
  std::vector<std::unique_ptr<TaskBehavior>> behaviors_;
  std::vector<Task*> tasks_;
  uint64_t ops_done_ = 0;
  TimeNs measure_start_ = 0;
};

// ---------------------------------------------------------------------------
// SelfMigratingTask: the Fig 3 synthetic single-threaded CPU-bound program.
// In migration mode it re-pins itself to the next vCPU every `hop_period`.
// ---------------------------------------------------------------------------

struct SelfMigratingParams {
  std::string name = "selfmig";
  bool migrate = false;     // default mode vs migration mode
  TimeNs hop_period = MsToNs(4);
  CpuMask allowed = CpuMask(~0ULL);
};

class SelfMigratingTask : public Workload {
 public:
  SelfMigratingTask(GuestKernel* kernel, SelfMigratingParams params);

  const std::string& name() const override { return params_.name; }
  void Start() override;
  void Stop() override;
  void ResetStats() override;
  WorkloadResult Result() const override;

  Task* task() const { return task_; }

 private:
  class Behavior;

  GuestKernel* kernel_;
  Simulation* sim_;
  SelfMigratingParams params_;
  bool running_ = false;
  std::unique_ptr<TaskBehavior> behavior_;
  Task* task_ = nullptr;
  TimeNs exec_at_reset_ = 0;
  TimeNs measure_start_ = 0;
};

}  // namespace vsched

#endif  // SRC_WORKLOADS_MICRO_H_
