// Named application models for every benchmark the paper evaluates (§5.1):
// 8 Tailbench, 10 Parsec, 11 Splash-2x, Nginx, Pbzip2, and the Sysbench /
// Hackbench / Fio / Matmul micro-workloads.
//
// Each name maps to a parameter set capturing the application's *shape* —
// task size, synchronization style, communication intensity, thread
// structure — which is what the scheduler experiments exercise.
#ifndef SRC_WORKLOADS_CATALOG_H_
#define SRC_WORKLOADS_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/guest/cpumask.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/workload.h"

namespace vsched {

class GuestKernel;

// How an application's performance is reported in Figs 18/19.
enum class MetricKind {
  kThroughput,  // higher is better
  kP95Latency,  // lower is better
};

struct CatalogEntry {
  std::string name;
  MetricKind metric;
  bool latency_sensitive;
};

// All 31 applications of Figures 18/19, in the paper's order, plus the
// micro-workloads.
const std::vector<CatalogEntry>& Catalog();

// The Figure 18/19 application list (throughput-oriented first, then
// latency-sensitive), exactly 31 names.
std::vector<std::string> Fig18WorkloadNames();

// Instantiates an application model. `threads` scales worker/thread counts
// (Fig 18/19 uses threads >= vCPUs); for latency apps it sets the worker
// pool and the arrival rate is scaled accordingly.
std::unique_ptr<Workload> MakeWorkload(GuestKernel* kernel, const std::string& name, int threads,
                                       CpuMask allowed = CpuMask(~0ULL));

// Metric kind for a catalog name (kThroughput when unknown).
MetricKind MetricFor(const std::string& name);

// Parameters for a latency-sensitive service by name, with an explicit
// per-worker load factor (fraction of one vCPU each worker's share of the
// offered load would consume at full speed). MakeWorkload uses 0.15.
LatencyAppParams LatencyParamsFor(const std::string& name, int workers, double load_factor);

}  // namespace vsched

#endif  // SRC_WORKLOADS_CATALOG_H_
