// Open-loop latency-sensitive request/response application — the Tailbench
// and Nginx analogue.
//
// Requests arrive by a Poisson process into a dispatch queue; a pool of
// worker tasks serves them (event-wait when idle). End-to-end latency is
// arrival → completion; the Table 3 breakdown separately accounts runqueue
// waiting (queue time) and execution (service time).
#ifndef SRC_WORKLOADS_LATENCY_APP_H_
#define SRC_WORKLOADS_LATENCY_APP_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/guest/cpumask.h"
#include "src/guest/task.h"
#include "src/sim/rng.h"
#include "src/sim/timer_wheel.h"
#include "src/stats/stats.h"
#include "src/workloads/workload.h"

namespace vsched {

class GuestKernel;
class Simulation;

struct LatencyAppParams {
  std::string name = "latency-app";
  int workers = 4;
  double arrival_rate_per_sec = 100.0;
  // Per-request service demand: exclusive full-capacity execution time.
  TimeNs service_mean = UsToNs(500);
  double service_cv = 0.3;
  CpuMask allowed = CpuMask(~0ULL);
  // Report live throughput into a TimeSeries every `report_interval` (0 →
  // no live series). Used by the Nginx experiments (Fig 16/17).
  TimeNs report_interval = 0;
  // Connection model: consecutive requests of a connection carry state; a
  // worker serving a request pays a cache-transfer penalty from the vCPU
  // that served the connection's previous request (0 connections → off).
  int connections = 0;
  int comm_lines = 0;
  // Closed-loop client: `connections` outstanding requests, each re-issued
  // immediately upon completion (wrk-style). Throughput then reflects
  // latency, as in the live-throughput experiments (Fig 16/17).
  bool closed_loop = false;
};

class LatencyApp : public Workload {
 public:
  LatencyApp(GuestKernel* kernel, LatencyAppParams params);
  ~LatencyApp() override;

  const std::string& name() const override { return params_.name; }
  void Start() override;
  void Stop() override;
  void ResetStats() override;
  WorkloadResult Result() const override;

  // Table 3 breakdown (ns).
  const Distribution& end_to_end() const { return end_to_end_; }
  const Distribution& queue_time() const { return queue_time_; }
  const Distribution& service_time() const { return service_time_; }

  // Live throughput (requests/s per report interval).
  const TimeSeries& live_throughput() const { return live_; }

  // Changes the offered load at runtime.
  void SetArrivalRate(double per_sec) { params_.arrival_rate_per_sec = per_sec; }

 private:
  class WorkerBehavior;
  struct Request {
    TimeNs arrival;
    int connection = -1;
  };

  void ScheduleNextArrival();
  void OnArrival();
  void InjectRequest(int connection, int waker_hint);
  void OnReport();

  GuestKernel* kernel_;
  Simulation* sim_;
  LatencyAppParams params_;
  Rng rng_;
  bool running_ = false;

  std::vector<std::unique_ptr<WorkerBehavior>> behaviors_;
  std::vector<Task*> workers_;
  std::deque<Request> queue_;
  std::vector<int> idle_workers_;  // indices into workers_
  std::vector<int> conn_last_cpu_;  // per connection: vCPU of previous request

  Distribution end_to_end_;
  Distribution queue_time_;
  Distribution service_time_;
  TimeSeries live_;
  uint64_t completed_ = 0;
  uint64_t completed_at_last_report_ = 0;
  TimeNs measure_start_ = 0;
  // Open-loop arrivals and live-throughput reports both re-post themselves
  // for the app's whole life: wheel timers re-armed in place, not fresh heap
  // events (a fleet runs thousands of these generators concurrently).
  TimerId arrival_timer_ = kInvalidTimerId;
  TimerId report_timer_ = kInvalidTimerId;

  // Liveness token for posted event closures (the PR-6 pattern, enforced by
  // vsched-lint's event-lifetime rule). Must be the last member so it
  // expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_WORKLOADS_LATENCY_APP_H_
