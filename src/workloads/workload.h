// Common interface for synthetic application models.
//
// Each workload owns its task behaviors and reports a uniform result: the
// paper's metrics are throughput (requests, iterations, items, or events per
// second) for throughput-oriented applications and p95 tail latency for
// latency-sensitive ones.
#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <string>

#include "src/base/time.h"
#include "src/stats/stats.h"

namespace vsched {

struct WorkloadResult {
  // Units completed per second over the measured interval.
  double throughput = 0;
  // End-to-end latency quantiles (ns); zero for pure-throughput workloads.
  double p50_ns = 0;
  double p95_ns = 0;
  double p99_ns = 0;
  double mean_ns = 0;
  uint64_t completed = 0;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const std::string& name() const = 0;

  // Creates and starts the workload's tasks.
  virtual void Start() = 0;

  // Asks the workload to wind down; tasks exit at their next decision point.
  virtual void Stop() = 0;

  // Resets measurement state (use after a warm-up period).
  virtual void ResetStats() = 0;

  // Result over the interval since Start()/ResetStats().
  virtual WorkloadResult Result() const = 0;
};

}  // namespace vsched

#endif  // SRC_WORKLOADS_WORKLOAD_H_
