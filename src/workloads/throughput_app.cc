#include "src/workloads/throughput_app.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/guest/guest_kernel.h"
#include "src/sim/simulation.h"

namespace vsched {

// ---------------------------------------------------------------------------
// BarrierApp
// ---------------------------------------------------------------------------

class BarrierApp::ThreadBehavior : public TaskBehavior {
 public:
  ThreadBehavior(BarrierApp* app, int index) : app_(app), index_(index) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override {
    BarrierApp* app = app_;
    switch (reason) {
      case RunReason::kStarted:
        return Chunk(ctx);
      case RunReason::kBurstComplete: {
        // Reached the barrier.
        ++app->arrived_;
        if (app->arrived_ == static_cast<int>(app->tasks_.size())) {
          // Last arrival releases everyone.
          app->arrived_ = 0;
          ++app->iterations_done_;
          bool done = !app->running_ ||
                      (app->params_.max_iterations > 0 &&
                       app->iterations_done_ >= app->params_.max_iterations);
          if (done) {
            app->running_ = false;
            app->finished_ = true;
            app->finish_time_ = ctx.sim->now();
          }
          for (size_t i = 0; i < app->tasks_.size(); ++i) {
            if (static_cast<int>(i) != index_) {
              ctx.kernel->WakeTask(app->tasks_[i], ctx.task->cpu());
            }
          }
          if (done) {
            return TaskAction::Exit();
          }
          return Chunk(ctx);
        }
        return TaskAction::WaitEvent();
      }
      case RunReason::kEventWake:
      case RunReason::kSleepExpired:
        if (!app->running_) {
          return TaskAction::Exit();
        }
        return Chunk(ctx);
    }
    return TaskAction::Exit();
  }

 private:
  TaskAction Chunk(TaskContext& ctx) {
    BarrierApp* app = app_;
    double ns = app->rng_.LogNormal(static_cast<double>(app->params_.chunk_mean),
                                    app->params_.chunk_cv);
    Work work = WorkAtCapacity(kCapacityScale, static_cast<TimeNs>(ns));
    if (app->params_.comm_lines > 0) {
      // Fetch shared data produced by thread 0 (the "master") last barrier.
      int master_cpu = app->tasks_[0]->cpu();
      int my_cpu = ctx.task->cpu() >= 0 ? ctx.task->cpu() : 0;
      if (master_cpu >= 0 && master_cpu != my_cpu) {
        work += ctx.kernel->CommWorkPenalty(master_cpu, my_cpu, app->params_.comm_lines);
      }
    }
    return TaskAction::Run(work);
  }

  BarrierApp* app_;
  int index_;
};

BarrierApp::BarrierApp(GuestKernel* kernel, BarrierAppParams params)
    : kernel_(kernel), sim_(kernel->sim()), params_(std::move(params)),
      rng_(kernel->sim()->ForkRng()) {}

BarrierApp::~BarrierApp() = default;

void BarrierApp::Start() {
  VSCHED_CHECK(!running_);
  running_ = true;
  measure_start_ = sim_->now();
  for (int i = 0; i < params_.threads; ++i) {
    behaviors_.push_back(std::make_unique<ThreadBehavior>(this, i));
    Task* t = kernel_->CreateTask(params_.name + "-t" + std::to_string(i), params_.policy,
                                  behaviors_.back().get(), params_.allowed);
    tasks_.push_back(t);
  }
  for (Task* t : tasks_) {
    kernel_->StartTask(t);
  }
}

void BarrierApp::Stop() { running_ = false; }

void BarrierApp::ResetStats() {
  iterations_at_reset_ = iterations_done_;
  measure_start_ = sim_->now();
}

WorkloadResult BarrierApp::Result() const {
  WorkloadResult r;
  double elapsed = NsToSec((finished_ ? finish_time_ : sim_->now()) - measure_start_);
  r.completed = static_cast<uint64_t>(iterations_done_ - iterations_at_reset_);
  r.throughput = elapsed > 0 ? static_cast<double>(r.completed) / elapsed : 0;
  return r;
}

// ---------------------------------------------------------------------------
// PipelineApp
// ---------------------------------------------------------------------------

class PipelineApp::StageWorkerBehavior : public TaskBehavior {
 public:
  StageWorkerBehavior(PipelineApp* app, int stage, int global_index)
      : app_(app), stage_(stage), global_index_(global_index) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override {
    PipelineApp* app = app_;
    switch (reason) {
      case RunReason::kStarted:
        app->stage_idle_[stage_].push_back(global_index_);
        return TaskAction::WaitEvent();
      case RunReason::kEventWake:
      case RunReason::kSleepExpired:
        return TakeNext(ctx);
      case RunReason::kBurstComplete: {
        // Item processed: pass it downstream (or count it as done).
        Item out;
        out.from_cpu = ctx.task->cpu();
        if (stage_ + 1 < static_cast<int>(app->stage_queue_.size())) {
          app->Deliver(stage_ + 1, out);
        } else {
          ++app->items_done_;
          app->Inject();  // Closed loop: keep the window full.
        }
        return TakeNext(ctx);
      }
    }
    return TaskAction::Exit();
  }

 private:
  TaskAction TakeNext(TaskContext& ctx) {
    PipelineApp* app = app_;
    if (!app->running_ && app->stage_queue_[stage_].empty()) {
      return TaskAction::Exit();
    }
    if (app->stage_queue_[stage_].empty()) {
      app->stage_idle_[stage_].push_back(global_index_);
      return TaskAction::WaitEvent();
    }
    Item item = app->stage_queue_[stage_].front();
    app->stage_queue_[stage_].pop_front();
    const PipelineStageParams& sp = app->params_.stages[stage_];
    double ns = app->rng_.LogNormal(static_cast<double>(sp.work_mean), sp.work_cv);
    Work work = WorkAtCapacity(kCapacityScale, static_cast<TimeNs>(ns));
    int my_cpu = ctx.task->cpu() >= 0 ? ctx.task->cpu() : 0;
    if (item.from_cpu >= 0 && item.from_cpu != my_cpu && app->params_.comm_lines > 0) {
      work += ctx.kernel->CommWorkPenalty(item.from_cpu, my_cpu, app->params_.comm_lines);
    }
    return TaskAction::Run(work);
  }

  PipelineApp* app_;
  int stage_;
  int global_index_;
};

PipelineApp::PipelineApp(GuestKernel* kernel, PipelineAppParams params)
    : kernel_(kernel), sim_(kernel->sim()), params_(std::move(params)),
      rng_(kernel->sim()->ForkRng()) {
  VSCHED_CHECK(!params_.stages.empty());
}

PipelineApp::~PipelineApp() = default;

void PipelineApp::Start() {
  VSCHED_CHECK(!running_);
  running_ = true;
  measure_start_ = sim_->now();
  int num_stages = static_cast<int>(params_.stages.size());
  stage_tasks_.resize(num_stages);
  stage_idle_.resize(num_stages);
  stage_queue_.resize(num_stages);
  for (int s = 0; s < num_stages; ++s) {
    for (int w = 0; w < params_.stages[s].workers; ++w) {
      int global_index = static_cast<int>(behaviors_.size());
      behaviors_.push_back(std::make_unique<StageWorkerBehavior>(this, s, global_index));
      Task* t = kernel_->CreateTask(params_.name + "-s" + std::to_string(s) + "w" +
                                        std::to_string(w),
                                    params_.policy, behaviors_.back().get(), params_.allowed);
      kernel_->StartTask(t);
      stage_tasks_[s].push_back(t);
      all_tasks_.push_back(t);
    }
  }
  for (int i = 0; i < params_.window; ++i) {
    Inject();
  }
}

void PipelineApp::Stop() {
  running_ = false;
  for (int s = 0; s < static_cast<int>(stage_idle_.size()); ++s) {
    for (int idx : stage_idle_[s]) {
      kernel_->WakeTask(all_tasks_[idx]);
    }
    stage_idle_[s].clear();
  }
}

void PipelineApp::ResetStats() {
  items_done_ = 0;
  measure_start_ = sim_->now();
}

WorkloadResult PipelineApp::Result() const {
  WorkloadResult r;
  double elapsed = NsToSec(sim_->now() - measure_start_);
  r.completed = items_done_;
  r.throughput = elapsed > 0 ? static_cast<double>(items_done_) / elapsed : 0;
  return r;
}

void PipelineApp::Inject() {
  if (!running_) {
    return;
  }
  if (params_.max_items > 0 && injected_ >= static_cast<uint64_t>(params_.max_items)) {
    return;
  }
  ++injected_;
  Deliver(0, Item{});
}

void PipelineApp::Deliver(int stage, Item item) {
  stage_queue_[stage].push_back(item);
  if (!stage_idle_[stage].empty()) {
    int idx = stage_idle_[stage].back();
    stage_idle_[stage].pop_back();
    kernel_->WakeTask(all_tasks_[idx], item.from_cpu);
  }
}

// ---------------------------------------------------------------------------
// TaskParallelApp
// ---------------------------------------------------------------------------

class TaskParallelApp::ThreadBehavior : public TaskBehavior {
 public:
  explicit ThreadBehavior(TaskParallelApp* app) : app_(app) {}

  TaskAction Next(TaskContext&, RunReason reason) override {
    TaskParallelApp* app = app_;
    if (reason == RunReason::kBurstComplete) {
      ++app->chunks_done_;
    }
    if (!app->running_) {
      return TaskAction::Exit();
    }
    if (app->params_.max_chunks > 0 &&
        app->chunks_issued_ >= static_cast<uint64_t>(app->params_.max_chunks)) {
      return TaskAction::Exit();
    }
    ++app->chunks_issued_;
    double ns = app->rng_.LogNormal(static_cast<double>(app->params_.chunk_mean),
                                    app->params_.chunk_cv);
    return TaskAction::Run(WorkAtCapacity(kCapacityScale, static_cast<TimeNs>(ns)));
  }

 private:
  TaskParallelApp* app_;
};

TaskParallelApp::TaskParallelApp(GuestKernel* kernel, TaskParallelParams params)
    : kernel_(kernel), sim_(kernel->sim()), params_(std::move(params)),
      rng_(kernel->sim()->ForkRng()) {}

TaskParallelApp::~TaskParallelApp() = default;

void TaskParallelApp::Start() {
  VSCHED_CHECK(!running_);
  running_ = true;
  measure_start_ = sim_->now();
  for (int i = 0; i < params_.threads; ++i) {
    behaviors_.push_back(std::make_unique<ThreadBehavior>(this));
    Task* t = kernel_->CreateTask(params_.name + "-t" + std::to_string(i), params_.policy,
                                  behaviors_.back().get(), params_.allowed);
    kernel_->StartTask(t);
    tasks_.push_back(t);
  }
}

void TaskParallelApp::Stop() { running_ = false; }

void TaskParallelApp::ResetStats() {
  chunks_done_ = 0;
  measure_start_ = sim_->now();
}

WorkloadResult TaskParallelApp::Result() const {
  WorkloadResult r;
  double elapsed = NsToSec(sim_->now() - measure_start_);
  r.completed = chunks_done_;
  r.throughput = elapsed > 0 ? static_cast<double>(chunks_done_) / elapsed : 0;
  return r;
}

}  // namespace vsched
