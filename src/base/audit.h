// Runtime invariant auditing for the simulator core.
//
// The audit layer is the dynamic half of the correctness tooling (the static
// half is tools/lint/): when enabled, the core data structures re-verify
// their own invariants after every mutation — heap property and handle-index
// consistency in EventQueue, sort order and compensated-load agreement in
// Runqueue, clock monotonicity in Simulation, queue/bandwidth consistency in
// CpuSched. Auditing only *reads* simulator state, so an audited run
// produces byte-identical output to an unaudited one — just slower (every
// hook is a full O(n) structure scan).
//
// Enablement is a process-wide runtime switch: the VSCHED_AUDIT environment
// variable (any value but "0"), audit::SetEnabled(true), or vsched_run
// --audit. When disabled, each hook costs one relaxed atomic load.
//
// A violation reports through the installed handler; the default prints the
// failed invariant and aborts (same philosophy as VSCHED_CHECK: loud failure
// over silent corruption). Tests install a recording handler via
// audit::ScopedHandler to assert that deliberately corrupted structures are
// caught without killing the test binary.
#ifndef SRC_BASE_AUDIT_H_
#define SRC_BASE_AUDIT_H_

#include <atomic>
#include <cstdint>

namespace vsched {
namespace audit {

// Called with the location, the stringified invariant expression, and a
// human-oriented detail string (may be nullptr).
using Handler = void (*)(const char* file, int line, const char* invariant, const char* detail);

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// True when invariant auditing is active. Cheap enough to guard hot paths.
inline bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on);

// Number of violations reported since process start (or the last Reset).
uint64_t ViolationCount();
void ResetViolationCount();

// Installs `h` as the violation handler and returns the previous one.
// Passing nullptr restores the default abort-on-violation handler.
Handler SetHandler(Handler h);

// Records a violation (bumps ViolationCount) and invokes the handler.
void ReportViolation(const char* file, int line, const char* invariant, const char* detail);

// RAII: enable auditing for a scope (tests, the --audit CLI path).
class ScopedEnable {
 public:
  ScopedEnable() : prev_(Enabled()) { SetEnabled(true); }
  ~ScopedEnable() { SetEnabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

// RAII: swap the violation handler for a scope (tests install a recorder).
class ScopedHandler {
 public:
  explicit ScopedHandler(Handler h) : prev_(SetHandler(h)) {}
  ~ScopedHandler() { SetHandler(prev_); }
  ScopedHandler(const ScopedHandler&) = delete;
  ScopedHandler& operator=(const ScopedHandler&) = delete;

 private:
  Handler prev_;
};

}  // namespace audit
}  // namespace vsched

// Verifies `expr` only while auditing is enabled. Unlike VSCHED_CHECK this
// routes through the audit handler, so tests can observe violations without
// dying, and a release binary running --audit still gets the full report.
#define VSCHED_AUDIT_CHECK(expr, detail)                                        \
  do {                                                                          \
    if (::vsched::audit::Enabled() && !(expr)) {                                \
      ::vsched::audit::ReportViolation(__FILE__, __LINE__, #expr, (detail));    \
    }                                                                           \
  } while (0)

#endif  // SRC_BASE_AUDIT_H_
