#include "src/base/thread_pool.h"

#include <algorithm>

namespace vsched {

ThreadPool::ThreadPool(int threads) {
  unsigned n = threads > 0 ? static_cast<unsigned>(threads) : std::thread::hardware_concurrency();
  n = std::max(1u, n);
  shards_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Push(std::function<void()> fn) {
  size_t shard = next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  {
    std::lock_guard<std::mutex> lock(shards_[shard]->mu);
    shards_[shard]->tasks.push_back(std::move(fn));
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    ++pending_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::Take(size_t self, std::function<void()>& out) {
  {
    Shard& own = *shards_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  for (size_t i = 1; i < shards_.size(); ++i) {
    Shard& victim = *shards_[(self + i) % shards_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(sleep_mu_);
      work_cv_.wait(lock, [this] { return pending_ > 0 || stopping_; });
      if (pending_ == 0) {
        return;  // stopping_ and nothing left to drain
      }
      --pending_;
    }
    // pending_ was decremented for us, so some shard holds a task; stealing
    // makes the scan guaranteed to find one.
    while (!Take(self, task)) {
    }
    task();
  }
}

}  // namespace vsched
