#include "src/base/check.h"

namespace vsched {

void CheckFailure(const char* file, int line, const char* expr, const char* msg) {
  std::fprintf(stderr, "VSCHED_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg != nullptr ? " — " : "", msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace vsched
