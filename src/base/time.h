// Virtual-time units used throughout the simulator.
//
// All simulated time is expressed in integer nanoseconds (`TimeNs`). Work is
// expressed in abstract "work units" (`Work`): one work unit is the amount of
// computation a 1024-capacity CPU (Linux's SCHED_CAPACITY_SCALE) completes in
// one nanosecond. A task with `demand` work units therefore takes
// `demand / 1024` ns of exclusive time on a full-speed core.
#ifndef SRC_BASE_TIME_H_
#define SRC_BASE_TIME_H_

#include <cstdint>

namespace vsched {

// A point in simulated time, in nanoseconds since simulation start.
using TimeNs = int64_t;

// A quantity of computation. See the header comment for the unit definition.
using Work = double;

// Linux-style capacity scale: a fully dedicated, full-frequency hardware
// thread has capacity 1024.
inline constexpr double kCapacityScale = 1024.0;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs UsToNs(int64_t us) { return us * kNsPerUs; }
constexpr TimeNs MsToNs(int64_t ms) { return ms * kNsPerMs; }
constexpr TimeNs SecToNs(int64_t sec) { return sec * kNsPerSec; }

constexpr double NsToMs(TimeNs ns) { return static_cast<double>(ns) / kNsPerMs; }
constexpr double NsToSec(TimeNs ns) { return static_cast<double>(ns) / kNsPerSec; }

// Work completed by a CPU running at `capacity` (in SCHED_CAPACITY_SCALE
// units) for `dur` nanoseconds.
constexpr Work WorkAtCapacity(double capacity, TimeNs dur) {
  return capacity * static_cast<double>(dur);
}

// Time needed to complete `work` at `capacity`. Returns a very large time for
// a non-positive capacity (the work can never finish while stalled).
TimeNs TimeToComplete(Work work, double capacity);

// A far-future sentinel that is still safe to add small offsets to.
inline constexpr TimeNs kTimeInfinity = INT64_MAX / 4;

}  // namespace vsched

#endif  // SRC_BASE_TIME_H_
