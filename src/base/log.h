// Minimal leveled logging for the simulator.
//
// Logging defaults to kWarn so tests and benches stay quiet; experiments that
// want a narrative (e.g. the adaptability bench) raise the level explicitly.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace vsched {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Process-wide minimum level actually emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Emits one formatted line to stderr if `level` passes the filter.
void LogLine(LogLevel level, const std::string& message);

// Stream-style helper: VSCHED_LOG(kInfo) << "probed " << n << " pairs";
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace vsched

#define VSCHED_LOG(level) ::vsched::LogMessage(::vsched::LogLevel::level).stream()

#endif  // SRC_BASE_LOG_H_
