// Fast half-life exponential decay.
//
// PELT-style signals decay by 2^-(dt/half_life). The naive std::exp2 call
// sits on the tick path for every task and vCPU; with lazy PELT the call
// count drops but each remaining call covers a longer, arbitrary dt, so the
// evaluation itself must be cheap and branch-light. HalfLifeDecay splits the
// exponent into its integer part (an exact std::ldexp scale, which also
// handles underflow to subnormals/zero for very long idle gaps) and a
// fractional part looked up in a 256-slot table of 2^-i/256 with linear
// interpolation (relative error < 1e-6). dt == 0 returns exactly 1.0, so
// zero-length updates are exact no-ops.
#ifndef SRC_BASE_DECAY_H_
#define SRC_BASE_DECAY_H_

#include "src/base/time.h"

namespace vsched {

// 2^-(dt/half_life); dt must be >= 0, half_life > 0.
double HalfLifeDecay(TimeNs dt, TimeNs half_life);

}  // namespace vsched

#endif  // SRC_BASE_DECAY_H_
