#include "src/base/perf_counters.h"

namespace vsched {
namespace internal {

namespace {
// Per-thread fallback so Current() is never null and un-scoped components
// (tests, ad-hoc benches) can still count without setup.
thread_local PerfCounters g_perf_default;
}  // namespace

thread_local PerfCounters* g_perf_current = &g_perf_default;

}  // namespace internal

PerfCounters::Scope::Scope(PerfCounters* counters) : prev_(internal::g_perf_current) {
  internal::g_perf_current = counters;
}

PerfCounters::Scope::~Scope() { internal::g_perf_current = prev_; }

}  // namespace vsched
