#include "src/base/time.h"

#include <cmath>

namespace vsched {

TimeNs TimeToComplete(Work work, double capacity) {
  if (work <= 0) {
    return 0;
  }
  if (capacity <= 0) {
    return kTimeInfinity;
  }
  double ns = std::ceil(work / capacity);
  if (ns >= static_cast<double>(kTimeInfinity)) {
    return kTimeInfinity;
  }
  return static_cast<TimeNs>(ns);
}

}  // namespace vsched
