#include "src/base/audit.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vsched {
namespace audit {

namespace {

bool EnvRequestsAudit() {
  const char* v = std::getenv("VSCHED_AUDIT");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

void DefaultHandler(const char* file, int line, const char* invariant, const char* detail) {
  std::fprintf(stderr, "[vsched audit] %s:%d: invariant violated: %s%s%s\n", file, line,
               invariant, detail != nullptr ? " — " : "", detail != nullptr ? detail : "");
  std::fflush(stderr);
  std::abort();
}

std::atomic<uint64_t> g_violations{0};
std::atomic<Handler> g_handler{&DefaultHandler};

}  // namespace

namespace internal {
std::atomic<bool> g_enabled{EnvRequestsAudit()};
}  // namespace internal

void SetEnabled(bool on) { internal::g_enabled.store(on, std::memory_order_relaxed); }

uint64_t ViolationCount() { return g_violations.load(std::memory_order_relaxed); }

void ResetViolationCount() { g_violations.store(0, std::memory_order_relaxed); }

Handler SetHandler(Handler h) {
  return g_handler.exchange(h != nullptr ? h : &DefaultHandler, std::memory_order_acq_rel);
}

void ReportViolation(const char* file, int line, const char* invariant, const char* detail) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  g_handler.load(std::memory_order_acquire)(file, line, invariant, detail);
}

}  // namespace audit
}  // namespace vsched
