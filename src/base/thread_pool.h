// Work-stealing thread pool for running independent simulations in parallel.
//
// Each worker owns a deque; Submit() distributes tasks round-robin across the
// deques, a worker pops from the front of its own deque and steals from the
// back of a sibling's when it runs dry. Tasks are whole simulation runs
// (milliseconds to seconds of work), so per-deque mutexes — not lock-free
// deques — are the right complexity point.
#ifndef SRC_BASE_THREAD_POOL_H_
#define SRC_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace vsched {

class ThreadPool {
 public:
  // threads <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);

  // Drains every task already submitted, then joins the workers. Futures
  // returned by Submit() are therefore always eventually satisfied.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn` and returns a future for its result. An exception thrown
  // by `fn` is captured and rethrown from future::get().
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Push([task] { (*task)(); });
    return future;
  }

 private:
  struct Shard {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void Push(std::function<void()> fn);
  // Pops from shard `self`'s front, else steals from another shard's back.
  bool Take(size_t self, std::function<void()>& out);
  void WorkerLoop(size_t self);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_shard_{0};

  // Sleep/wake protocol: `pending_` counts queued-but-not-started tasks and
  // is only modified with `sleep_mu_` held, so a worker checking the wait
  // predicate cannot miss a wakeup.
  std::mutex sleep_mu_;
  std::condition_variable work_cv_;
  size_t pending_ = 0;
  bool stopping_ = false;
};

}  // namespace vsched

#endif  // SRC_BASE_THREAD_POOL_H_
