// Lightweight hot-path accounting for the simulator core.
//
// Counters are plain per-thread tallies, not atomics: each simulation runs
// entirely on one thread (the runner gives every run its own Simulation), so
// a thread-local "current counters" pointer is race-free and costs one TLS
// load per increment. Components cache the pointer at construction; the
// runner installs a fresh PerfCounters around each run via Scope and attaches
// the totals to the RunResult, where `vsched_run --timings` surfaces them as
// events/sec and allocation tallies (see docs/PERF.md).
#ifndef SRC_BASE_PERF_COUNTERS_H_
#define SRC_BASE_PERF_COUNTERS_H_

#include <cstdint>

namespace vsched {

struct PerfCounters {
  // Event-queue traffic.
  uint64_t events_scheduled = 0;
  uint64_t events_executed = 0;
  uint64_t events_cancelled = 0;

  // Allocation pressure: steady state should be zero for both — slabs are
  // amortized and callbacks should fit the inline buffer.
  uint64_t callback_heap_allocs = 0;
  uint64_t event_slab_allocs = 0;

  // Runqueue traffic.
  uint64_t rq_enqueues = 0;
  uint64_t rq_dequeues = 0;
  uint64_t rq_picks = 0;

  // Timer-wheel traffic (the periodic "timer band"; see src/sim/timer_wheel.h).
  uint64_t timer_arms = 0;
  uint64_t timer_fires = 0;
  uint64_t timer_cancels = 0;
  uint64_t timer_cascades = 0;

  // Periodic firings skipped entirely by tickless elision (guest scheduler
  // ticks on inactive vCPUs, dormant host bandwidth refills).
  uint64_t ticks_elided = 0;

  void Reset() { *this = PerfCounters{}; }

  // Accumulates another tally into this one — how the sharded fleet engine
  // folds its per-cell counters into the run's ambient sink at Finish.
  void MergeFrom(const PerfCounters& other) {
    events_scheduled += other.events_scheduled;
    events_executed += other.events_executed;
    events_cancelled += other.events_cancelled;
    callback_heap_allocs += other.callback_heap_allocs;
    event_slab_allocs += other.event_slab_allocs;
    rq_enqueues += other.rq_enqueues;
    rq_dequeues += other.rq_dequeues;
    rq_picks += other.rq_picks;
    timer_arms += other.timer_arms;
    timer_fires += other.timer_fires;
    timer_cancels += other.timer_cancels;
    timer_cascades += other.timer_cascades;
    ticks_elided += other.ticks_elided;
  }

  // The thread's active counters; never null (falls back to a per-thread
  // default sink when no Scope is installed).
  static PerfCounters* Current();

  // Installs `counters` as the calling thread's sink for its lifetime;
  // restores the previous sink on destruction. Not reentrancy-hostile:
  // scopes nest.
  class Scope {
   public:
    explicit Scope(PerfCounters* counters);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PerfCounters* prev_;
  };
};

namespace internal {
extern thread_local PerfCounters* g_perf_current;
}  // namespace internal

inline PerfCounters* PerfCounters::Current() { return internal::g_perf_current; }

}  // namespace vsched

#endif  // SRC_BASE_PERF_COUNTERS_H_
