// Always-on invariant checking.
//
// The simulator favours loud failure over silent corruption: invariant
// violations abort with a message identifying the call site. CHECK is active
// in all build types; DCHECK compiles out in NDEBUG builds and is reserved
// for hot paths.
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace vsched {

[[noreturn]] void CheckFailure(const char* file, int line, const char* expr, const char* msg);

}  // namespace vsched

#define VSCHED_CHECK(expr)                                          \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::vsched::CheckFailure(__FILE__, __LINE__, #expr, nullptr);   \
    }                                                               \
  } while (0)

#define VSCHED_CHECK_MSG(expr, msg)                              \
  do {                                                           \
    if (!(expr)) {                                               \
      ::vsched::CheckFailure(__FILE__, __LINE__, #expr, (msg));  \
    }                                                            \
  } while (0)

#ifdef NDEBUG
#define VSCHED_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define VSCHED_DCHECK(expr) VSCHED_CHECK(expr)
#endif

#endif  // SRC_BASE_CHECK_H_
