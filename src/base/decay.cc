#include "src/base/decay.h"

#include <array>
#include <cmath>
#include <cstddef>

#include "src/base/check.h"

namespace vsched {

namespace {

constexpr int kFracBits = 8;
constexpr int kFracSlots = 1 << kFracBits;

// table[i] = 2^-(i/256), i in [0, 256]; built once (thread-safe magic
// static), read-only afterwards.
const std::array<double, kFracSlots + 1>& FracTable() {
  static const std::array<double, kFracSlots + 1> table = [] {
    std::array<double, kFracSlots + 1> t{};
    for (size_t i = 0; i < t.size(); ++i) {
      t[i] = std::exp2(-static_cast<double>(i) / kFracSlots);
    }
    return t;
  }();
  return table;
}

}  // namespace

double HalfLifeDecay(TimeNs dt, TimeNs half_life) {
  VSCHED_CHECK(dt >= 0 && half_life > 0);
  if (dt == 0) {
    return 1.0;
  }
  const TimeNs whole = dt / half_life;
  if (whole > 1100) {
    return 0.0;  // past double's subnormal floor: 2^-1075 is already zero
  }
  const double frac =
      static_cast<double>(dt % half_life) / static_cast<double>(half_life);
  const double scaled = frac * kFracSlots;  // in [0, 256)
  const size_t idx = static_cast<size_t>(scaled);
  const double sub = scaled - static_cast<double>(idx);
  const std::array<double, kFracSlots + 1>& table = FracTable();
  const double f = table[idx] + (table[idx + 1] - table[idx]) * sub;
  return std::ldexp(f, -static_cast<int>(whole));
}

}  // namespace vsched
