#include "src/cluster/fleet.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"
#include "src/cluster/fleet_ops.h"
#include "src/guest/guest_kernel.h"
#include "src/sim/simulation.h"

namespace vsched {

Fleet::Fleet(Simulation* sim, FleetSpec spec, VSchedOptions guest_options,
             const FaultPlan* fault_plan, bool tickless)
    : sim_(sim),
      spec_(std::move(spec)),
      guest_options_(guest_options),
      tickless_(tickless),
      rng_(sim->ForkRng()) {
  VSCHED_CHECK(spec_.hosts > 0 && spec_.vms > 0 && spec_.vcpus_per_vm > 0);
  VSCHED_CHECK(spec_.initial_hosts_on >= 1 && spec_.initial_hosts_on <= spec_.hosts);

  topology_ = std::make_shared<const HostTopology>(spec_.host_topology);
  HostSchedParams host_params;
  host_params.min_granularity = spec_.host_min_granularity;
  host_params.wakeup_granularity = spec_.host_wakeup_granularity;
  host_params.tickless = tickless_;
  host_params_ = std::make_shared<const HostSchedParams>(host_params);
  GuestParams guest_params;
  guest_params.tickless = tickless_;
  guest_params_ = std::make_shared<const GuestParams>(guest_params);

  guest_options_.vcap.sampling_period = spec_.probe_window;
  guest_options_.vcap.light_interval = spec_.probe_interval;
  guest_options_.vcap.heavy_every = spec_.probe_heavy_every;
  guest_options_.vact.update_interval = spec_.probe_interval;
  guest_options_.rwc.straggler_ratio = spec_.rwc_straggler_ratio;

  placement_ = MakePlacementPolicy(spec_.placement);
  VSCHED_CHECK_MSG(placement_ != nullptr, "unknown placement policy");

  hosts_.reserve(static_cast<size_t>(spec_.hosts));
  for (int h = 0; h < spec_.hosts; ++h) {
    auto host = std::make_unique<ClusterHost>();
    host->id = h;
    host->machine = std::make_unique<HostMachine>(sim_, topology_, host_params_);
    host->power = h < spec_.initial_hosts_on ? HostPower::kOn : HostPower::kOff;
    host->thread_commits.assign(static_cast<size_t>(topology_->num_threads()), 0);
    host->occupants.resize(static_cast<size_t>(topology_->num_threads()));
    hosts_.push_back(std::move(host));
  }

  if (fault_plan != nullptr && !fault_plan->Empty()) {
    for (auto& host : hosts_) {
      if (FleetInjectorHost(host->id, *fault_plan)) {
        // No VM is bound: bandwidth jitter and probe chaos stay off; steal
        // bursts, stressor storms, frequency droops, and adversarial
        // co-tenants hit the machine.
        injectors_.push_back(std::make_unique<FaultInjector>(sim_, host->machine.get(),
                                                             /*vm=*/nullptr, *fault_plan));
      }
    }
  }
}

Fleet::~Fleet() {
  if (!finished_) {
    Finish();
  }
}

int Fleet::CapacityVcpus() const {
  return FleetCapacityVcpus(spec_, topology_->num_threads());
}

int Fleet::hosts_on() const {
  int on = 0;
  for (const auto& host : hosts_) {
    if (host->power != HostPower::kOff) {
      ++on;
    }
  }
  return on;
}

std::vector<HostLoadView> Fleet::LoadViews() const {
  std::vector<HostLoadView> views;
  views.reserve(hosts_.size());
  int capacity = CapacityVcpus();
  for (const auto& host : hosts_) {
    HostLoadView view;
    view.host_id = host->id;
    view.accepts_vms = host->power == HostPower::kOn;
    view.committed_vcpus = host->committed_vcpus;
    view.capacity_vcpus = capacity;
    views.push_back(view);
  }
  return views;
}

void Fleet::Start() {
  start_time_ = sim_->now();
  last_sample_ = start_time_;
  for (auto& host : hosts_) {
    host->idle_since = start_time_;
  }

  // Draw the whole Poisson arrival schedule up front (one rng stream, fixed
  // order), then post the arrival storm as one batch: equivalent to per-VM
  // At() calls but with a single heap repair instead of `vms` sifts.
  double mean_gap = static_cast<double>(spec_.arrival_window) / static_cast<double>(spec_.vms);
  TimeNs at = start_time_;
  std::vector<TimeNs> arrival_times;
  arrival_times.reserve(static_cast<size_t>(spec_.vms));
  for (int i = 0; i < spec_.vms; ++i) {
    at += static_cast<TimeNs>(rng_.Exponential(mean_gap));
    auto tenant = std::make_unique<TenantVm>();
    tenant->id = i;
    tenant->name = "t" + std::to_string(i);
    if (spec_.vm_lifetime_mean > 0) {
      tenant->departs_at =
          at + static_cast<TimeNs>(rng_.Exponential(static_cast<double>(spec_.vm_lifetime_mean)));
    }
    tenants_.push_back(std::move(tenant));
    arrival_times.push_back(at);
  }
  sim_->queue().PostBatch(arrival_times, [this](size_t i) {
    return [this, i = static_cast<int>(i), alive = std::weak_ptr<const bool>(alive_)] {
      if (alive.expired()) {
        return;
      }
      OnVmArrival(i);
    };
  });

  for (auto& injector : injectors_) {
    injector->Start();
  }
  control_loop_ = sim_->Every(spec_.control_period,
                              [this, alive = std::weak_ptr<const bool>(alive_)] {
                                if (alive.expired()) {
                                  return;
                                }
                                ControlTick();
                              });
}

std::vector<HwThreadId> Fleet::ReserveThreads(ClusterHost* host, int vcpus) {
  return ReserveHostThreads(spec_, topology_->num_threads(), host, vcpus);
}

void Fleet::ReleaseCommits(int host_id, const std::vector<HwThreadId>& tids) {
  ReleaseHostCommits(hosts_[static_cast<size_t>(host_id)].get(), tids, sim_->now());
}

void Fleet::ReshapeThread(ClusterHost* host, HwThreadId tid) {
  // During Finish() teardown neighbor VMs are being destroyed in id order;
  // caps no longer matter and the occupant list must not be dereferenced.
  if (spec_.cap_period <= 0 || finished_) {
    return;
  }
  auto& occ = host->occupants[static_cast<size_t>(tid)];
  int k = static_cast<int>(occ.size());
  for (const auto& [tenant_id, vcpu] : occ) {
    Vm* vm = tenants_[static_cast<size_t>(tenant_id)]->vm.get();
    if (k <= 1) {
      vm->ClearVcpuBandwidth(vcpu);
    } else {
      vm->SetVcpuBandwidth(vcpu, spec_.cap_period / k, spec_.cap_period);
    }
  }
}

void Fleet::OccupyThreads(TenantVm* tenant) {
  ClusterHost* host = hosts_[static_cast<size_t>(tenant->host_id)].get();
  for (size_t v = 0; v < tenant->tids.size(); ++v) {
    host->occupants[static_cast<size_t>(tenant->tids[v])].emplace_back(tenant->id,
                                                                       static_cast<int>(v));
  }
  for (HwThreadId tid : tenant->tids) {
    ReshapeThread(host, tid);
  }
}

void Fleet::VacateThreads(TenantVm* tenant) {
  ClusterHost* host = hosts_[static_cast<size_t>(tenant->host_id)].get();
  for (auto tid : tenant->tids) {
    auto& occ = host->occupants[static_cast<size_t>(tid)];
    for (auto it = occ.begin(); it != occ.end(); ++it) {
      if (it->first == tenant->id) {
        occ.erase(it);
        break;
      }
    }
  }
  for (HwThreadId tid : tenant->tids) {
    ReshapeThread(host, tid);
  }
}

void Fleet::OnVmArrival(int tenant_id) {
  TenantVm* tenant = tenants_[static_cast<size_t>(tenant_id)].get();
  if (!TryPlace(tenant)) {
    pending_.push_back(tenant_id);
    BootHostsIfNeeded();
  }
}

bool Fleet::TryPlace(TenantVm* tenant) {
  int host_id = placement_->Pick(LoadViews(), spec_.vcpus_per_vm);
  if (host_id < 0) {
    return false;
  }
  ClusterHost* host = hosts_[static_cast<size_t>(host_id)].get();
  tenant->host_id = host_id;
  tenant->tids = ReserveThreads(host, spec_.vcpus_per_vm);

  VmSpec vm_spec;
  vm_spec.name = tenant->name;
  vm_spec.guest_params = guest_params_;  // one shared snapshot fleet-wide
  for (HwThreadId tid : tenant->tids) {
    VcpuPlacement p;
    p.tid = tid;
    vm_spec.vcpus.push_back(p);
  }
  tenant->vm = std::make_unique<Vm>(sim_, host->machine.get(), std::move(vm_spec));
  OccupyThreads(tenant);
  tenant->vsched = std::make_unique<VSched>(&tenant->vm->kernel(), guest_options_);
  tenant->vsched->Start();

  tenant->batch = spec_.batch_every > 0 && tenant->id % spec_.batch_every == 0;
  if (tenant->batch) {
    TaskParallelParams bp;
    bp.name = tenant->name + "/batch";
    bp.threads = spec_.vcpus_per_vm;
    bp.chunk_mean = MsToNs(2);
    tenant->batch_app = std::make_unique<TaskParallelApp>(&tenant->vm->kernel(), bp);
    tenant->batch_app->Start();
  } else {
    LatencyAppParams app;
    app.name = tenant->name + "/app";
    app.workers = spec_.vcpus_per_vm;
    app.arrival_rate_per_sec =
        spec_.requests_per_sec_per_vcpu * static_cast<double>(spec_.vcpus_per_vm);
    app.service_mean = spec_.service_mean;
    app.service_cv = spec_.service_cv;
    tenant->app = std::make_unique<LatencyApp>(&tenant->vm->kernel(), app);
    tenant->app->Start();
    if (spec_.background_tasks_per_vm > 0) {
      // Best-effort work co-located inside the service VM (the paper's §2
      // restricted-capacity regime). SCHED_IDLE yields instantly to the
      // latency workers *in the guest*, but the spinning keeps draining the
      // host bandwidth quota, so vCPUs go inactive in a way guest CFS
      // cannot observe at wakeup-placement time — vact can.
      TaskParallelParams bg;
      bg.name = tenant->name + "/bg";
      bg.threads = spec_.background_tasks_per_vm;
      bg.chunk_mean = MsToNs(10);
      bg.policy = TaskPolicy::kIdle;
      tenant->bg_app = std::make_unique<TaskParallelApp>(&tenant->vm->kernel(), bg);
      tenant->bg_app->Start();
    }
  }

  tenant->placed = true;
  totals_.vms_placed += 1;
  if (tenant->departs_at > 0) {
    TimeNs when = std::max(tenant->departs_at, sim_->now() + 1);
    int id = tenant->id;
    sim_->At(when, [this, id, alive = std::weak_ptr<const bool>(alive_)] {
      if (alive.expired()) {
        return;
      }
      TenantVm* t = tenants_[static_cast<size_t>(id)].get();
      if (t->departed) {
        return;
      }
      if (t->migrating) {
        t->depart_pending = true;  // the commit handler finishes the job
        return;
      }
      DoDepart(t);
    });
  }
  return true;
}

void Fleet::PlacePending() {
  while (!pending_.empty()) {
    TenantVm* tenant = tenants_[static_cast<size_t>(pending_.front())].get();
    if (!TryPlace(tenant)) {
      break;  // FIFO: nothing smaller jumps the queue
    }
    pending_.pop_front();
  }
}

void Fleet::BootHostsIfNeeded() {
  // Reactive provisioning: boot Off hosts (lowest id first) until the
  // committed capacity of On + Booting hosts covers the pending demand.
  int need = static_cast<int>(pending_.size()) * spec_.vcpus_per_vm;
  if (need == 0) {
    return;
  }
  int capacity = CapacityVcpus();
  int free_commits = 0;
  for (const auto& host : hosts_) {
    if (host->power != HostPower::kOff) {
      free_commits += capacity - host->committed_vcpus;
    }
  }
  for (auto& host : hosts_) {
    if (free_commits >= need) {
      break;
    }
    if (host->power != HostPower::kOff) {
      continue;
    }
    host->power = HostPower::kBooting;
    totals_.hosts_booted += 1;
    free_commits += capacity;
    int id = host->id;
    sim_->After(spec_.boot_delay, [this, id, alive = std::weak_ptr<const bool>(alive_)] {
      if (alive.expired()) {
        return;
      }
      OnBootComplete(id);
    });
  }
}

void Fleet::OnBootComplete(int host_id) {
  ClusterHost* host = hosts_[static_cast<size_t>(host_id)].get();
  VSCHED_CHECK(host->power == HostPower::kBooting);
  host->power = HostPower::kOn;
  host->idle_since = sim_->now();
  PlacePending();
}

void Fleet::ControlTick() {
  SampleEnergyAndUtil();
  PlacePending();
  BootHostsIfNeeded();
  MaybeConsolidate();

  // Idle power-down: an On host with no commitments for idle_shutdown_after
  // powers off, as long as min_hosts_on powered hosts remain.
  TimeNs now = sim_->now();
  int on = hosts_on();
  for (auto& host : hosts_) {
    if (on <= spec_.min_hosts_on) {
      break;
    }
    if (host->power == HostPower::kOn && host->committed_vcpus == 0 &&
        now - host->idle_since >= spec_.idle_shutdown_after) {
      host->power = HostPower::kOff;
      totals_.hosts_shutdown += 1;
      on -= 1;
    }
  }
}

void Fleet::SampleEnergyAndUtil() {
  TimeNs now = sim_->now();
  TimeNs dt = now - last_sample_;
  last_sample_ = now;
  if (dt <= 0) {
    return;
  }
  double dt_sec = static_cast<double>(dt) / 1e9;
  for (auto& host : hosts_) {
    double watts = spec_.off_watts;
    if (host->power == HostPower::kBooting) {
      watts = spec_.booting_watts;
    } else if (host->power == HostPower::kOn) {
      int busy = 0;
      int threads = topology_->num_threads();
      for (int t = 0; t < threads; ++t) {
        if (host->machine->sched(t).busy()) {
          ++busy;
        }
      }
      double util = static_cast<double>(busy) / static_cast<double>(threads);
      watts = spec_.idle_watts + (spec_.busy_watts - spec_.idle_watts) * util;
      util_integral_ += util * dt_sec;
      on_time_integral_ += dt_sec;
    }
    host->energy_j += watts * dt_sec;
  }
}

void Fleet::MaybeConsolidate() {
  // Drain the least-committed On host whose load ratio sits in
  // (0, consolidate_below]: live-migrate its lowest-id tenant to a strictly
  // busier host the policy accepts. One migration start per tick keeps the
  // churn bounded and the event trace easy to audit.
  int capacity = CapacityVcpus();
  ClusterHost* source = nullptr;
  double source_load = 0;
  for (auto& host : hosts_) {
    if (host->power != HostPower::kOn || host->committed_vcpus == 0) {
      continue;
    }
    double load = static_cast<double>(host->committed_vcpus) / static_cast<double>(capacity);
    if (load > spec_.consolidate_below) {
      continue;
    }
    if (source == nullptr || load < source_load) {
      source = host.get();
      source_load = load;
    }
  }
  if (source == nullptr) {
    return;
  }
  TenantVm* mover = nullptr;
  for (auto& tenant : tenants_) {
    if (tenant->placed && !tenant->departed && !tenant->migrating &&
        tenant->host_id == source->id) {
      mover = tenant.get();
      break;
    }
  }
  if (mover == nullptr) {
    return;  // everything on the host is already in flight
  }
  // Drain destination is picked best-fit — the most-committed On host that
  // still fits the VM — independent of the arrival-placement policy. Asking
  // the spreading policy here is self-defeating: it returns the *least*
  // committed host, which is never strictly busier than a drain source, so
  // consolidation silently never fires (the fleet_small bench sat at zero
  // migrations for exactly this reason).
  int dest_id = -1;
  for (const HostLoadView& view : LoadViews()) {
    if (!view.accepts_vms || view.host_id == source->id) {
      continue;
    }
    if (view.committed_vcpus + spec_.vcpus_per_vm > view.capacity_vcpus) {
      continue;
    }
    if (dest_id < 0 ||
        view.committed_vcpus > hosts_[static_cast<size_t>(dest_id)]->committed_vcpus) {
      dest_id = view.host_id;
    }
  }
  if (dest_id < 0) {
    return;
  }
  ClusterHost* dest = hosts_[static_cast<size_t>(dest_id)].get();
  if (dest->committed_vcpus <= source->committed_vcpus) {
    return;  // only drain toward busier hosts, or two near-idle hosts ping-pong
  }
  mover->migrating = true;
  mover->mig_dest_host = dest_id;
  mover->mig_dest_tids = ReserveThreads(dest, spec_.vcpus_per_vm);
  int id = mover->id;
  // Pre-copy phase: the VM keeps running on the source for the copy latency.
  sim_->After(spec_.migration_copy_latency,
              [this, id, alive = std::weak_ptr<const bool>(alive_)] {
                if (alive.expired()) {
                  return;
                }
                OnMigrationDowntime(id);
              });
}

void Fleet::OnMigrationDowntime(int tenant_id) {
  TenantVm* tenant = tenants_[static_cast<size_t>(tenant_id)].get();
  VSCHED_CHECK(tenant->migrating);
  if (tenant->depart_pending) {
    // The tenant's lifetime ended during the copy: abort the migration.
    ReleaseCommits(tenant->mig_dest_host, tenant->mig_dest_tids);
    tenant->migrating = false;
    tenant->mig_dest_host = -1;
    tenant->mig_dest_tids.clear();
    DoDepart(tenant);
    return;
  }
  // Downtime blackout: paused vCPUs stay attached (guest sees steal).
  tenant->vm->SetPausedAll(true);
  int id = tenant->id;
  sim_->After(spec_.migration_downtime,
              [this, id, alive = std::weak_ptr<const bool>(alive_)] {
                if (alive.expired()) {
                  return;
                }
                OnMigrationCommit(id);
              });
}

void Fleet::OnMigrationCommit(int tenant_id) {
  TenantVm* tenant = tenants_[static_cast<size_t>(tenant_id)].get();
  VSCHED_CHECK(tenant->migrating);
  ClusterHost* dest = hosts_[static_cast<size_t>(tenant->mig_dest_host)].get();
  VacateThreads(tenant);  // source neighbors' caps relax
  tenant->vm->MigrateToMachine(dest->machine.get(), tenant->mig_dest_tids);
  tenant->vm->SetPausedAll(false);
  ReleaseCommits(tenant->host_id, tenant->tids);
  tenant->host_id = tenant->mig_dest_host;
  tenant->tids = tenant->mig_dest_tids;
  tenant->mig_dest_host = -1;
  tenant->mig_dest_tids.clear();
  tenant->migrating = false;
  OccupyThreads(tenant);  // dest caps tighten around the newcomer
  totals_.migrations += 1;
  if (tenant->depart_pending) {
    DoDepart(tenant);
  }
}

void Fleet::HarvestStats(TenantVm* tenant) {
  // Guest-side detection/containment counters, summed exactly once per
  // tenant (HarvestStats runs at departure or at Finish, never both) while
  // the tenant's VSched is still alive. All zero unless robust.enabled.
  if (tenant->vsched != nullptr) {
    totals_.pessimistic_publishes += tenant->vsched->pessimistic_publishes();
    if (tenant->vsched->vcap() != nullptr) {
      totals_.quarantine_events +=
          static_cast<uint64_t>(tenant->vsched->vcap()->quarantine_events());
    }
    if (tenant->vsched->degradation().transitions() > 0) {
      totals_.degraded_tenants += 1;
    }
  }
  if (tenant->batch) {
    totals_.batch_chunks += tenant->batch_app->chunks_done();
    return;
  }
  if (tenant->bg_app != nullptr) {
    totals_.batch_chunks += tenant->bg_app->chunks_done();
  }
  const Distribution& latency = tenant->app->end_to_end();
  fleet_latency_.MergeFrom(latency);
  totals_.slo_violations += latency.CountAbove(static_cast<double>(spec_.slo_latency));
  totals_.requests += static_cast<uint64_t>(latency.count());
  if (latency.count() > 0) {
    tenant_p99s_.Add(latency.P99());
  }
}

void Fleet::StopApps(TenantVm* tenant) {
  if (tenant->app != nullptr) {
    tenant->app->Stop();
    tenant->app.reset();
  }
  if (tenant->batch_app != nullptr) {
    tenant->batch_app->Stop();
    tenant->batch_app.reset();
  }
  if (tenant->bg_app != nullptr) {
    tenant->bg_app->Stop();
    tenant->bg_app.reset();
  }
}

void Fleet::DoDepart(TenantVm* tenant) {
  VSCHED_CHECK(tenant->placed && !tenant->departed && !tenant->migrating);
  HarvestStats(tenant);
  StopApps(tenant);
  tenant->vsched->Stop();
  tenant->vsched.reset();
  VacateThreads(tenant);  // neighbors' caps relax before the VM detaches
  tenant->vm.reset();     // detaches the vCPU threads from the host
  ReleaseCommits(tenant->host_id, tenant->tids);
  tenant->departed = true;
  totals_.vms_departed += 1;
}

void Fleet::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  SampleEnergyAndUtil();
  if (control_loop_ != nullptr) {
    sim_->CancelPeriodic(control_loop_);
    control_loop_ = nullptr;
  }
  for (auto& injector : injectors_) {
    injector->Stop();
    totals_.fault_applied += injector->stats().total_applied();
    totals_.adversary_activations += injector->adversary_activations();
  }
  for (auto& tenant : tenants_) {
    if (!tenant->placed || tenant->departed) {
      continue;
    }
    HarvestStats(tenant.get());
    StopApps(tenant.get());
    tenant->vsched->Stop();
    tenant->vsched.reset();
    tenant->vm.reset();
    ReleaseCommits(tenant->host_id, tenant->tids);
  }
  totals_.vms_rejected = static_cast<int>(pending_.size());

  totals_.fleet_p50_ns = fleet_latency_.P50();
  totals_.fleet_p95_ns = fleet_latency_.P95();
  totals_.fleet_p99_ns = fleet_latency_.P99();
  totals_.fleet_mean_ns = fleet_latency_.Mean();
  totals_.tenant_p99_p50_ns = tenant_p99s_.P50();
  totals_.tenant_p99_p95_ns = tenant_p99s_.P95();
  totals_.tenant_p99_max_ns = tenant_p99s_.Max();
  totals_.hosts_on_at_end = hosts_on();
  totals_.host_util_mean = on_time_integral_ > 0 ? util_integral_ / on_time_integral_ : 0;
  double energy = 0;
  for (const auto& host : hosts_) {
    energy += host->energy_j;
  }
  totals_.energy_j = energy;
}

}  // namespace vsched
