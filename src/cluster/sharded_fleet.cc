#include "src/cluster/sharded_fleet.h"

#include <algorithm>
#include <future>
#include <numeric>
#include <utility>

#include "src/base/check.h"
#include "src/cluster/fleet_ops.h"
#include "src/guest/guest_kernel.h"

namespace vsched {

ShardedFleet::ShardedFleet(FleetSpec spec, uint64_t seed, VSchedOptions guest_options, int shards,
                           const FaultPlan* fault_plan, bool tickless)
    : spec_(std::move(spec)),
      guest_options_(guest_options),
      tickless_(tickless),
      shards_(shards),
      control_rng_(0) {
  VSCHED_CHECK(spec_.hosts > 0 && spec_.vms > 0 && spec_.vcpus_per_vm > 0);
  VSCHED_CHECK(spec_.initial_hosts_on >= 1 && spec_.initial_hosts_on <= spec_.hosts);
  VSCHED_CHECK(spec_.cell_hosts > 0);
  VSCHED_CHECK(shards_ >= 1);

  // Conservative lookahead: no control-plane interaction takes effect sooner
  // than the gcd of the control-plane latencies, and each of them is a
  // multiple of it — so every delayed action lands exactly on a barrier. A
  // spec whose latencies are mutually prime would grind the window toward
  // single-event lockstep; the floor catches that at construction instead of
  // letting the engine crawl.
  window_ = std::gcd(spec_.control_period, spec_.boot_delay);
  window_ = std::gcd(window_, spec_.migration_copy_latency);
  window_ = std::gcd(window_, spec_.migration_downtime);
  VSCHED_CHECK_MSG(window_ >= UsToNs(100),
                   "fleet control-plane latencies give a sub-100us lookahead window");

  Rng root(seed);
  control_rng_ = root.Fork();

  topology_ = std::make_shared<const HostTopology>(spec_.host_topology);
  HostSchedParams host_params;
  host_params.min_granularity = spec_.host_min_granularity;
  host_params.wakeup_granularity = spec_.host_wakeup_granularity;
  host_params.tickless = tickless_;
  host_params_ = std::make_shared<const HostSchedParams>(host_params);
  GuestParams guest_params;
  guest_params.tickless = tickless_;
  guest_params_ = std::make_shared<const GuestParams>(guest_params);

  guest_options_.vcap.sampling_period = spec_.probe_window;
  guest_options_.vcap.light_interval = spec_.probe_interval;
  guest_options_.vcap.heavy_every = spec_.probe_heavy_every;
  guest_options_.vact.update_interval = spec_.probe_interval;
  guest_options_.rwc.straggler_ratio = spec_.rwc_straggler_ratio;

  placement_ = MakePlacementPolicy(spec_.placement);
  VSCHED_CHECK_MSG(placement_ != nullptr, "unknown placement policy");

  // The cell partition is a pure function of the spec: contiguous
  // cell_hosts-sized ranges, never influenced by `shards`. Cell seeds are
  // drawn from the root stream in cell order, so every cell's RNG stream is
  // identical at any worker-thread count.
  int num_cells = (spec_.hosts + spec_.cell_hosts - 1) / spec_.cell_hosts;
  cells_.reserve(static_cast<size_t>(num_cells));
  for (int c = 0; c < num_cells; ++c) {
    uint64_t cell_seed = root.NextU64();
    auto cell = std::make_unique<FleetCell>();
    cell->id = c;
    cell->first_host = c * spec_.cell_hosts;
    // Everything a cell owns is constructed under the cell's counter scope:
    // the simulator components cache the thread's PerfCounters pointer at
    // construction, and binding them to the cell's own tally is what keeps
    // the plain-uint64 counters race-free when cells run on worker threads.
    PerfCounters::Scope scope(&cell->counters);
    cell->sim = std::make_unique<Simulation>(cell_seed);
    int last_host = std::min(spec_.hosts, cell->first_host + spec_.cell_hosts);
    for (int h = cell->first_host; h < last_host; ++h) {
      auto host = std::make_unique<ClusterHost>();
      host->id = h;
      host->machine = std::make_unique<HostMachine>(cell->sim.get(), topology_, host_params_);
      host->power = h < spec_.initial_hosts_on ? HostPower::kOn : HostPower::kOff;
      host->thread_commits.assign(static_cast<size_t>(topology_->num_threads()), 0);
      host->occupants.resize(static_cast<size_t>(topology_->num_threads()));
      cell->hosts.push_back(std::move(host));
    }
    if (fault_plan != nullptr && !fault_plan->Empty()) {
      for (auto& host : cell->hosts) {
        if (FleetInjectorHost(host->id, *fault_plan)) {
          cell->injectors.push_back(std::make_unique<FaultInjector>(
              cell->sim.get(), host->machine.get(), /*vm=*/nullptr, *fault_plan));
        }
      }
    }
    cells_.push_back(std::move(cell));
  }

  if (shards_ > 1) {
    pool_ = std::make_unique<ThreadPool>(shards_);
  }
}

ShardedFleet::~ShardedFleet() {
  if (started_ && !finished_) {
    // An aborted run (budget trip mid-window) still tears tenants down in
    // deterministic order and freezes totals.
    TimeNs now = 0;
    for (const auto& cell : cells_) {
      now = std::max(now, cell->sim->now());
    }
    Finish(now);
  }
}

FleetCell* ShardedFleet::CellOfHost(int host_id) {
  return cells_[static_cast<size_t>(host_id / spec_.cell_hosts)].get();
}

const FleetCell* ShardedFleet::CellOfHost(int host_id) const {
  return cells_[static_cast<size_t>(host_id / spec_.cell_hosts)].get();
}

const ClusterHost& ShardedFleet::host(int id) const {
  const FleetCell* cell = CellOfHost(id);
  return *cell->hosts[static_cast<size_t>(id - cell->first_host)];
}

int ShardedFleet::CapacityVcpus() const {
  return FleetCapacityVcpus(spec_, topology_->num_threads());
}

int ShardedFleet::hosts_on() const {
  int on = 0;
  for (const auto& cell : cells_) {
    for (const auto& host : cell->hosts) {
      if (host->power != HostPower::kOff) {
        ++on;
      }
    }
  }
  return on;
}

std::vector<HostLoadView> ShardedFleet::LoadViews() const {
  // Global host-id order (cell-major): identical to the sequential engine's
  // view order, so placement policies see the same candidate sequence.
  std::vector<HostLoadView> views;
  views.reserve(static_cast<size_t>(spec_.hosts));
  int capacity = CapacityVcpus();
  for (const auto& cell : cells_) {
    for (const auto& host : cell->hosts) {
      HostLoadView view;
      view.host_id = host->id;
      view.accepts_vms = host->power == HostPower::kOn;
      view.committed_vcpus = host->committed_vcpus;
      view.capacity_vcpus = capacity;
      views.push_back(view);
    }
  }
  return views;
}

TimeNs ShardedFleet::NextBarrierAtOrAfter(TimeNs t) const {
  return ((t + window_ - 1) / window_) * window_;
}

void ShardedFleet::SetEventBudgetPerCell(uint64_t budget) {
  for (auto& cell : cells_) {
    cell->sim->SetEventBudget(budget);
  }
}

uint64_t ShardedFleet::events_dispatched() const {
  uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->sim->events_dispatched();
  }
  return total;
}

void ShardedFleet::ScheduleArrivals(TimeNs start) {
  // The whole Poisson schedule is drawn up front from the control stream in
  // tenant-id order, then posted through the mailbox. Arrival instants are
  // quantized up to the next barrier — the placement decision rides the
  // control-plane RPC, and the barrier grid *is* the control plane's clock
  // resolution — which keeps every placement a barrier-time action.
  double mean_gap = static_cast<double>(spec_.arrival_window) / static_cast<double>(spec_.vms);
  TimeNs at = start;
  for (int i = 0; i < spec_.vms; ++i) {
    at += static_cast<TimeNs>(control_rng_.Exponential(mean_gap));
    auto tenant = std::make_unique<TenantVm>();
    tenant->id = i;
    tenant->name = "t" + std::to_string(i);
    if (spec_.vm_lifetime_mean > 0) {
      tenant->departs_at =
          at + static_cast<TimeNs>(control_rng_.Exponential(static_cast<double>(spec_.vm_lifetime_mean)));
    }
    tenants_.push_back(std::move(tenant));
    TimeNs due = NextBarrierAtOrAfter(at);
    mailbox_.Post(due, ShardMailbox::kControlPlane, [this, i, due] { OnVmArrival(i, due); });
  }
}

void ShardedFleet::Run(TimeNs horizon) {
  VSCHED_CHECK_MSG(!started_, "ShardedFleet::Run is single-shot");
  started_ = true;
  start_time_ = 0;
  last_sample_ = 0;
  for (auto& cell : cells_) {
    for (auto& host : cell->hosts) {
      host->idle_since = start_time_;
    }
    PerfCounters::Scope scope(&cell->counters);
    for (auto& injector : cell->injectors) {
      injector->Start();
    }
  }
  ScheduleArrivals(start_time_);

  // The window loop. At each barrier every cell is quiesced at exactly `t`;
  // the final barrier runs at the horizon itself, mirroring the sequential
  // engine where RunUntil(horizon) still executes events due at the horizon.
  TimeNs t = start_time_;
  for (;;) {
    BarrierPhase(t);
    if (t >= horizon) {
      break;
    }
    TimeNs next = std::min(t + window_, horizon);
    RunCellsUntil(next);
    t = next;
  }
  Finish(horizon);
}

void ShardedFleet::BarrierPhase(TimeNs now) {
  mailbox_.DrainUpTo(now);
  // Same cadence as the sequential engine's Every(): first fire at one full
  // period, then every period. The control tick runs after the mailbox so
  // consolidation sees arrivals/boots/commits already applied at this
  // instant.
  if (now > start_time_ && (now - start_time_) % spec_.control_period == 0) {
    ControlTick(now);
  }
}

void ShardedFleet::RunCellsUntil(TimeNs deadline) {
  // Every cell advances, even on error: a SimBudgetExceeded mid-window must
  // not leave sibling cells short of the barrier (teardown assumes quiesced
  // cells). The *lowest-id* failure is rethrown, making the propagated error
  // independent of worker scheduling.
  std::exception_ptr first_error;
  if (pool_ == nullptr) {
    for (auto& cell : cells_) {
      try {
        PerfCounters::Scope scope(&cell->counters);
        cell->sim->RunUntil(deadline);
      } catch (...) {
        if (first_error == nullptr) {
          first_error = std::current_exception();
        }
      }
    }
  } else {
    std::vector<std::future<void>> windows;
    windows.reserve(cells_.size());
    for (auto& cell : cells_) {
      FleetCell* c = cell.get();
      windows.push_back(pool_->Submit([c, deadline] {
        PerfCounters::Scope scope(&c->counters);
        c->sim->RunUntil(deadline);
      }));
    }
    for (auto& window : windows) {
      try {
        window.get();
      } catch (...) {
        if (first_error == nullptr) {
          first_error = std::current_exception();
        }
      }
    }
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

void ShardedFleet::OnVmArrival(int tenant_id, TimeNs now) {
  TenantVm* tenant = tenants_[static_cast<size_t>(tenant_id)].get();
  if (!TryPlace(tenant, now)) {
    pending_.push_back(tenant_id);
    BootHostsIfNeeded(now);
  }
}

bool ShardedFleet::TryPlace(TenantVm* tenant, TimeNs now) {
  int host_id = placement_->Pick(LoadViews(), spec_.vcpus_per_vm);
  if (host_id < 0) {
    return false;
  }
  FleetCell* cell = CellOfHost(host_id);
  ClusterHost* host = cell->hosts[static_cast<size_t>(host_id - cell->first_host)].get();
  tenant->host_id = host_id;
  tenant->tids = ReserveHostThreads(spec_, topology_->num_threads(), host, spec_.vcpus_per_vm);

  // The tenant's whole simulation stack lives in the owning cell: built
  // against the cell's Simulation, under the cell's counter scope (hot-path
  // components cache the counters pointer at construction).
  PerfCounters::Scope scope(&cell->counters);
  VmSpec vm_spec;
  vm_spec.name = tenant->name;
  vm_spec.guest_params = guest_params_;  // one shared snapshot fleet-wide
  for (HwThreadId tid : tenant->tids) {
    VcpuPlacement p;
    p.tid = tid;
    vm_spec.vcpus.push_back(p);
  }
  tenant->vm = std::make_unique<Vm>(cell->sim.get(), host->machine.get(), std::move(vm_spec));
  OccupyThreads(tenant);
  tenant->vsched = std::make_unique<VSched>(&tenant->vm->kernel(), guest_options_);
  tenant->vsched->Start();

  tenant->batch = spec_.batch_every > 0 && tenant->id % spec_.batch_every == 0;
  if (tenant->batch) {
    TaskParallelParams bp;
    bp.name = tenant->name + "/batch";
    bp.threads = spec_.vcpus_per_vm;
    bp.chunk_mean = MsToNs(2);
    tenant->batch_app = std::make_unique<TaskParallelApp>(&tenant->vm->kernel(), bp);
    tenant->batch_app->Start();
  } else {
    LatencyAppParams app;
    app.name = tenant->name + "/app";
    app.workers = spec_.vcpus_per_vm;
    app.arrival_rate_per_sec =
        spec_.requests_per_sec_per_vcpu * static_cast<double>(spec_.vcpus_per_vm);
    app.service_mean = spec_.service_mean;
    app.service_cv = spec_.service_cv;
    tenant->app = std::make_unique<LatencyApp>(&tenant->vm->kernel(), app);
    tenant->app->Start();
    if (spec_.background_tasks_per_vm > 0) {
      TaskParallelParams bg;
      bg.name = tenant->name + "/bg";
      bg.threads = spec_.background_tasks_per_vm;
      bg.chunk_mean = MsToNs(10);
      bg.policy = TaskPolicy::kIdle;
      tenant->bg_app = std::make_unique<TaskParallelApp>(&tenant->vm->kernel(), bg);
      tenant->bg_app->Start();
    }
  }

  tenant->placed = true;
  totals_.vms_placed += 1;
  if (tenant->departs_at > 0) {
    TimeNs due = std::max(NextBarrierAtOrAfter(tenant->departs_at), now + window_);
    int id = tenant->id;
    mailbox_.Post(due, ShardMailbox::kControlPlane, [this, id, due] { OnDepartureDue(id, due); });
  }
  return true;
}

void ShardedFleet::PlacePending(TimeNs now) {
  while (!pending_.empty()) {
    TenantVm* tenant = tenants_[static_cast<size_t>(pending_.front())].get();
    if (!TryPlace(tenant, now)) {
      break;  // FIFO: nothing smaller jumps the queue
    }
    pending_.pop_front();
  }
}

void ShardedFleet::BootHostsIfNeeded(TimeNs now) {
  int need = static_cast<int>(pending_.size()) * spec_.vcpus_per_vm;
  if (need == 0) {
    return;
  }
  int capacity = CapacityVcpus();
  int free_commits = 0;
  for (const auto& cell : cells_) {
    for (const auto& host : cell->hosts) {
      if (host->power != HostPower::kOff) {
        free_commits += capacity - host->committed_vcpus;
      }
    }
  }
  for (auto& cell : cells_) {
    for (auto& host : cell->hosts) {
      if (free_commits >= need) {
        return;
      }
      if (host->power != HostPower::kOff) {
        continue;
      }
      host->power = HostPower::kBooting;
      totals_.hosts_booted += 1;
      free_commits += capacity;
      int id = host->id;
      TimeNs due = now + spec_.boot_delay;  // boot_delay is a multiple of the window
      mailbox_.Post(due, ShardMailbox::kControlPlane, [this, id, due] { OnBootComplete(id, due); });
    }
  }
}

void ShardedFleet::OnBootComplete(int host_id, TimeNs now) {
  FleetCell* cell = CellOfHost(host_id);
  ClusterHost* host = cell->hosts[static_cast<size_t>(host_id - cell->first_host)].get();
  VSCHED_CHECK(host->power == HostPower::kBooting);
  host->power = HostPower::kOn;
  host->idle_since = now;
  PlacePending(now);
}

void ShardedFleet::ControlTick(TimeNs now) {
  SampleEnergyAndUtil(now);
  PlacePending(now);
  BootHostsIfNeeded(now);
  MaybeConsolidate(now);

  int on = hosts_on();
  for (auto& cell : cells_) {
    for (auto& host : cell->hosts) {
      if (on <= spec_.min_hosts_on) {
        return;
      }
      if (host->power == HostPower::kOn && host->committed_vcpus == 0 &&
          now - host->idle_since >= spec_.idle_shutdown_after) {
        host->power = HostPower::kOff;
        totals_.hosts_shutdown += 1;
        on -= 1;
      }
    }
  }
}

void ShardedFleet::SampleEnergyAndUtil(TimeNs now) {
  // Direct host-state reads are barrier-safe: every cell is quiesced at
  // exactly `now`, so sched(t).busy() is the same answer any worker would
  // have computed. Accumulation order is global host order — fixed, so the
  // floating-point sums are bit-stable at any shard count.
  TimeNs dt = now - last_sample_;
  last_sample_ = now;
  if (dt <= 0) {
    return;
  }
  double dt_sec = static_cast<double>(dt) / 1e9;
  for (auto& cell : cells_) {
    for (auto& host : cell->hosts) {
      double watts = spec_.off_watts;
      if (host->power == HostPower::kBooting) {
        watts = spec_.booting_watts;
      } else if (host->power == HostPower::kOn) {
        int busy = 0;
        int threads = topology_->num_threads();
        for (int t = 0; t < threads; ++t) {
          if (host->machine->sched(t).busy()) {
            ++busy;
          }
        }
        double util = static_cast<double>(busy) / static_cast<double>(threads);
        watts = spec_.idle_watts + (spec_.busy_watts - spec_.idle_watts) * util;
        util_integral_ += util * dt_sec;
        on_time_integral_ += dt_sec;
      }
      host->energy_j += watts * dt_sec;
    }
  }
}

void ShardedFleet::MaybeConsolidate(TimeNs now) {
  // Source selection scans the whole fleet, like the sequential engine; the
  // destination is confined to the source's *cell*. The cell is the
  // migration domain (rack locality): a live-migrating VM's pending events
  // and timers stay inside one cell Simulation, which is what makes the
  // copy/downtime/commit phases pure barrier-time state changes instead of
  // a cross-queue event transplant.
  int capacity = CapacityVcpus();
  ClusterHost* source = nullptr;
  double source_load = 0;
  for (auto& cell : cells_) {
    for (auto& host : cell->hosts) {
      if (host->power != HostPower::kOn || host->committed_vcpus == 0) {
        continue;
      }
      double load = static_cast<double>(host->committed_vcpus) / static_cast<double>(capacity);
      if (load > spec_.consolidate_below) {
        continue;
      }
      if (source == nullptr || load < source_load) {
        source = host.get();
        source_load = load;
      }
    }
  }
  if (source == nullptr) {
    return;
  }
  TenantVm* mover = nullptr;
  for (auto& tenant : tenants_) {
    if (tenant->placed && !tenant->departed && !tenant->migrating &&
        tenant->host_id == source->id) {
      mover = tenant.get();
      break;
    }
  }
  if (mover == nullptr) {
    return;  // everything on the host is already in flight
  }
  // Best-fit within the source's cell: the most-committed host that still
  // fits the VM (see Fleet::MaybeConsolidate for why best-fit, not the
  // arrival policy).
  FleetCell* cell = CellOfHost(source->id);
  ClusterHost* dest = nullptr;
  for (auto& host : cell->hosts) {
    if (host->power != HostPower::kOn || host->id == source->id) {
      continue;
    }
    if (host->committed_vcpus + spec_.vcpus_per_vm > capacity) {
      continue;
    }
    if (dest == nullptr || host->committed_vcpus > dest->committed_vcpus) {
      dest = host.get();
    }
  }
  if (dest == nullptr || dest->committed_vcpus <= source->committed_vcpus) {
    return;  // only drain toward busier hosts, or two near-idle hosts ping-pong
  }
  mover->migrating = true;
  mover->mig_dest_host = dest->id;
  mover->mig_dest_tids = ReserveHostThreads(spec_, topology_->num_threads(), dest, spec_.vcpus_per_vm);
  int id = mover->id;
  TimeNs due = now + spec_.migration_copy_latency;  // a multiple of the window
  mailbox_.Post(due, ShardMailbox::kControlPlane, [this, id, due] { OnMigrationDowntime(id, due); });
}

void ShardedFleet::OnMigrationDowntime(int tenant_id, TimeNs now) {
  TenantVm* tenant = tenants_[static_cast<size_t>(tenant_id)].get();
  VSCHED_CHECK(tenant->migrating);
  if (tenant->depart_pending) {
    // The tenant's lifetime ended during the copy: abort the migration.
    FleetCell* dest_cell = CellOfHost(tenant->mig_dest_host);
    ReleaseHostCommits(
        dest_cell->hosts[static_cast<size_t>(tenant->mig_dest_host - dest_cell->first_host)].get(),
        tenant->mig_dest_tids, now);
    tenant->migrating = false;
    tenant->mig_dest_host = -1;
    tenant->mig_dest_tids.clear();
    DoDepart(tenant, now);
    return;
  }
  // Downtime blackout: paused vCPUs stay attached (guest sees steal).
  FleetCell* cell = CellOfHost(tenant->host_id);
  PerfCounters::Scope scope(&cell->counters);
  tenant->vm->SetPausedAll(true);
  int id = tenant->id;
  TimeNs due = now + spec_.migration_downtime;
  mailbox_.Post(due, ShardMailbox::kControlPlane, [this, id, due] { OnMigrationCommit(id, due); });
}

void ShardedFleet::OnMigrationCommit(int tenant_id, TimeNs now) {
  TenantVm* tenant = tenants_[static_cast<size_t>(tenant_id)].get();
  VSCHED_CHECK(tenant->migrating);
  FleetCell* cell = CellOfHost(tenant->host_id);
  VSCHED_CHECK(CellOfHost(tenant->mig_dest_host) == cell);  // cell == migration domain
  ClusterHost* dest = cell->hosts[static_cast<size_t>(tenant->mig_dest_host - cell->first_host)].get();
  ClusterHost* source = cell->hosts[static_cast<size_t>(tenant->host_id - cell->first_host)].get();
  PerfCounters::Scope scope(&cell->counters);
  VacateThreads(tenant);  // source neighbors' caps relax
  tenant->vm->MigrateToMachine(dest->machine.get(), tenant->mig_dest_tids);
  tenant->vm->SetPausedAll(false);
  ReleaseHostCommits(source, tenant->tids, now);
  tenant->host_id = tenant->mig_dest_host;
  tenant->tids = tenant->mig_dest_tids;
  tenant->mig_dest_host = -1;
  tenant->mig_dest_tids.clear();
  tenant->migrating = false;
  OccupyThreads(tenant);  // dest caps tighten around the newcomer
  totals_.migrations += 1;
  if (tenant->depart_pending) {
    DoDepart(tenant, now);
  }
}

void ShardedFleet::OnDepartureDue(int tenant_id, TimeNs now) {
  TenantVm* tenant = tenants_[static_cast<size_t>(tenant_id)].get();
  if (tenant->departed) {
    return;
  }
  if (tenant->migrating) {
    tenant->depart_pending = true;  // the commit handler finishes the job
    return;
  }
  DoDepart(tenant, now);
}

void ShardedFleet::DoDepart(TenantVm* tenant, TimeNs now) {
  VSCHED_CHECK(tenant->placed && !tenant->departed && !tenant->migrating);
  FleetCell* cell = CellOfHost(tenant->host_id);
  PerfCounters::Scope scope(&cell->counters);
  HarvestStats(tenant);
  StopApps(tenant);
  tenant->vsched->Stop();
  tenant->vsched.reset();
  VacateThreads(tenant);  // neighbors' caps relax before the VM detaches
  tenant->vm.reset();     // detaches the vCPU threads from the host
  ReleaseHostCommits(cell->hosts[static_cast<size_t>(tenant->host_id - cell->first_host)].get(),
                     tenant->tids, now);
  tenant->departed = true;
  totals_.vms_departed += 1;
}

void ShardedFleet::HarvestStats(TenantVm* tenant) {
  // Guest-side detection/containment counters, summed exactly once per
  // tenant while its VSched is still alive — mirrors Fleet::HarvestStats
  // (integer sums, so the tenant-id harvest order is merge-order neutral).
  if (tenant->vsched != nullptr) {
    totals_.pessimistic_publishes += tenant->vsched->pessimistic_publishes();
    if (tenant->vsched->vcap() != nullptr) {
      totals_.quarantine_events +=
          static_cast<uint64_t>(tenant->vsched->vcap()->quarantine_events());
    }
    if (tenant->vsched->degradation().transitions() > 0) {
      totals_.degraded_tenants += 1;
    }
  }
  if (tenant->batch) {
    totals_.batch_chunks += tenant->batch_app->chunks_done();
    return;
  }
  if (tenant->bg_app != nullptr) {
    totals_.batch_chunks += tenant->bg_app->chunks_done();
  }
  const Distribution& latency = tenant->app->end_to_end();
  fleet_latency_.MergeFrom(latency);
  totals_.slo_violations += latency.CountAbove(static_cast<double>(spec_.slo_latency));
  totals_.requests += static_cast<uint64_t>(latency.count());
  if (latency.count() > 0) {
    tenant_p99s_.Add(latency.P99());
  }
}

void ShardedFleet::StopApps(TenantVm* tenant) {
  if (tenant->app != nullptr) {
    tenant->app->Stop();
    tenant->app.reset();
  }
  if (tenant->batch_app != nullptr) {
    tenant->batch_app->Stop();
    tenant->batch_app.reset();
  }
  if (tenant->bg_app != nullptr) {
    tenant->bg_app->Stop();
    tenant->bg_app.reset();
  }
}

void ShardedFleet::OccupyThreads(TenantVm* tenant) {
  FleetCell* cell = CellOfHost(tenant->host_id);
  ClusterHost* host = cell->hosts[static_cast<size_t>(tenant->host_id - cell->first_host)].get();
  for (size_t v = 0; v < tenant->tids.size(); ++v) {
    host->occupants[static_cast<size_t>(tenant->tids[v])].emplace_back(tenant->id,
                                                                       static_cast<int>(v));
  }
  for (HwThreadId tid : tenant->tids) {
    ReshapeThread(host, tid);
  }
}

void ShardedFleet::VacateThreads(TenantVm* tenant) {
  FleetCell* cell = CellOfHost(tenant->host_id);
  ClusterHost* host = cell->hosts[static_cast<size_t>(tenant->host_id - cell->first_host)].get();
  for (auto tid : tenant->tids) {
    auto& occ = host->occupants[static_cast<size_t>(tid)];
    for (auto it = occ.begin(); it != occ.end(); ++it) {
      if (it->first == tenant->id) {
        occ.erase(it);
        break;
      }
    }
  }
  for (HwThreadId tid : tenant->tids) {
    ReshapeThread(host, tid);
  }
}

void ShardedFleet::ReshapeThread(ClusterHost* host, HwThreadId tid) {
  // During Finish() teardown neighbor VMs are being destroyed in id order;
  // caps no longer matter and the occupant list must not be dereferenced.
  if (spec_.cap_period <= 0 || finished_) {
    return;
  }
  auto& occ = host->occupants[static_cast<size_t>(tid)];
  int k = static_cast<int>(occ.size());
  for (const auto& [tenant_id, vcpu] : occ) {
    Vm* vm = tenants_[static_cast<size_t>(tenant_id)]->vm.get();
    if (k <= 1) {
      vm->ClearVcpuBandwidth(vcpu);
    } else {
      vm->SetVcpuBandwidth(vcpu, spec_.cap_period / k, spec_.cap_period);
    }
  }
}

void ShardedFleet::Finish(TimeNs now) {
  if (finished_) {
    return;
  }
  finished_ = true;
  SampleEnergyAndUtil(now);
  for (auto& cell : cells_) {
    PerfCounters::Scope scope(&cell->counters);
    for (auto& injector : cell->injectors) {
      injector->Stop();
      totals_.fault_applied += injector->stats().total_applied();
      totals_.adversary_activations += injector->adversary_activations();
    }
  }
  // Live-tenant teardown and harvest in tenant-id order, like the sequential
  // engine: the merge order into the fleet-wide distributions is part of the
  // deterministic-output contract.
  for (auto& tenant : tenants_) {
    if (!tenant->placed || tenant->departed) {
      continue;
    }
    FleetCell* cell = CellOfHost(tenant->host_id);
    PerfCounters::Scope scope(&cell->counters);
    HarvestStats(tenant.get());
    StopApps(tenant.get());
    tenant->vsched->Stop();
    tenant->vsched.reset();
    tenant->vm.reset();
    ReleaseHostCommits(cell->hosts[static_cast<size_t>(tenant->host_id - cell->first_host)].get(),
                       tenant->tids, now);
  }
  totals_.vms_rejected = static_cast<int>(pending_.size());

  totals_.fleet_p50_ns = fleet_latency_.P50();
  totals_.fleet_p95_ns = fleet_latency_.P95();
  totals_.fleet_p99_ns = fleet_latency_.P99();
  totals_.fleet_mean_ns = fleet_latency_.Mean();
  totals_.tenant_p99_p50_ns = tenant_p99s_.P50();
  totals_.tenant_p99_p95_ns = tenant_p99s_.P95();
  totals_.tenant_p99_max_ns = tenant_p99s_.Max();
  totals_.hosts_on_at_end = hosts_on();
  totals_.host_util_mean = on_time_integral_ > 0 ? util_integral_ / on_time_integral_ : 0;
  double energy = 0;
  for (const auto& cell : cells_) {
    for (const auto& host : cell->hosts) {
      energy += host->energy_j;
    }
  }
  totals_.energy_j = energy;

  // Fold per-cell hot-path tallies into the run's ambient sink (cell order)
  // so `vsched_run --timings` aggregates sharded runs exactly like
  // sequential ones.
  for (const auto& cell : cells_) {
    PerfCounters::Current()->MergeFrom(cell->counters);
  }
}

}  // namespace vsched
