#include "src/cluster/fleet_ops.h"

#include <algorithm>

#include "src/base/check.h"

namespace vsched {

std::vector<HwThreadId> ReserveHostThreads(const FleetSpec& spec, int num_threads,
                                           ClusterHost* host, int vcpus) {
  // Rotating first-fit: take consecutive threads starting at a per-host
  // cursor, skipping only threads already at the stacking ceiling. Real VMMs
  // place vCPU threads wherever they land, not commit-balanced — so VM
  // footprints overlap partially and a VM's vCPUs end up with *unequal*
  // co-runners (some share a thread with a busy neighbor, some run alone).
  // That intra-VM capacity/latency asymmetry is the paper's §2 regime, the
  // thing guest CFS cannot see and vSched's probers exist to discover.
  // Least-committed-first reservation would equalize stacking across a VM's
  // vCPUs and erase the asymmetry.
  int n = num_threads;
  int ceiling = 1;
  while (ceiling * n < static_cast<int>(spec.overcommit * n)) {
    ++ceiling;
  }
  std::vector<HwThreadId> tids;
  tids.reserve(static_cast<size_t>(vcpus));
  int cursor = host->reserve_cursor;
  for (int v = 0; v < vcpus; ++v) {
    // First pass honors the per-thread ceiling; if all threads are at it
    // (the host-level commit gate still admitted us), fall back to the
    // least-committed thread so reservation never fails.
    int picked = -1;
    // Avoid giving this VM two vCPUs on one hardware thread (self-stacking):
    // real VMMs pin a VM's vCPU threads to distinct pCPUs whenever they fit,
    // and self-stacked siblings would only halve each other.
    for (int pass = 0; pass < 2 && picked < 0; ++pass) {
      for (int step = 0; step < n; ++step) {
        int t = (cursor + step) % n;
        if (host->thread_commits[static_cast<size_t>(t)] >= ceiling) {
          continue;
        }
        if (pass == 0 && std::find(tids.begin(), tids.end(), t) != tids.end()) {
          continue;
        }
        picked = t;
        cursor = (t + 1) % n;
        break;
      }
    }
    if (picked < 0) {
      picked = 0;
      for (int t = 1; t < n; ++t) {
        if (host->thread_commits[static_cast<size_t>(t)] <
            host->thread_commits[static_cast<size_t>(picked)]) {
          picked = t;
        }
      }
    }
    host->thread_commits[static_cast<size_t>(picked)] += 1;
    tids.push_back(picked);
  }
  // Advance one extra slot so successive footprints interleave even when the
  // VM size divides the thread count (4-vCPU VMs on 8 threads would
  // otherwise tile into aligned, internally-uniform chunks).
  host->reserve_cursor = (cursor + 1) % n;
  host->committed_vcpus += vcpus;
  return tids;
}

void ReleaseHostCommits(ClusterHost* host, const std::vector<HwThreadId>& tids, TimeNs now) {
  for (HwThreadId tid : tids) {
    host->thread_commits[static_cast<size_t>(tid)] -= 1;
    VSCHED_CHECK(host->thread_commits[static_cast<size_t>(tid)] >= 0);
  }
  host->committed_vcpus -= static_cast<int>(tids.size());
  VSCHED_CHECK(host->committed_vcpus >= 0);
  if (host->committed_vcpus == 0) {
    host->idle_since = now;
  }
}

int FleetCapacityVcpus(const FleetSpec& spec, int num_threads) {
  return static_cast<int>(static_cast<double>(num_threads) * spec.overcommit);
}

bool FleetChaosHost(int host_id) { return host_id % 4 == 0; }

bool FleetInjectorHost(int host_id, const FaultPlan& plan) {
  if (plan.adversary.active()) {
    return true;  // one adversarial tenant per host
  }
  return FleetChaosHost(host_id);
}

}  // namespace vsched
