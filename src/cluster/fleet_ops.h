// Host-slot mechanics shared by the two fleet engines — the sequential
// control plane (src/cluster/fleet.h) and the sharded PDES engine
// (src/cluster/sharded_fleet.h). Thread reservation and commit bookkeeping
// decide the stacking shape every guest observes, so both engines must run
// the exact same code or their placement behaviour silently diverges.
#ifndef SRC_CLUSTER_FLEET_OPS_H_
#define SRC_CLUSTER_FLEET_OPS_H_

#include <vector>

#include "src/base/time.h"
#include "src/cluster/fleet.h"
#include "src/cluster/fleet_spec.h"

namespace vsched {

// Rotating first-fit reservation of `vcpus` hardware threads on one host;
// updates the host's commit bookkeeping. See the comment in the definition
// for why first-fit (not least-committed) is load-bearing for the paper's
// intra-VM asymmetry regime.
std::vector<HwThreadId> ReserveHostThreads(const FleetSpec& spec, int num_threads,
                                           ClusterHost* host, int vcpus);

// Returns the reserved commits; stamps idle_since = `now` when the host
// empties (the idle power-down clock).
void ReleaseHostCommits(ClusterHost* host, const std::vector<HwThreadId>& tids, TimeNs now);

// vCPU commitments a host accepts: hardware threads x overcommit.
int FleetCapacityVcpus(const FleetSpec& spec, int num_threads);

// Hosts carrying machine-level chaos when a fault plan is armed: a
// deterministic quarter of the fleet, by global host id (so the set is
// identical however hosts are partitioned into cells).
bool FleetChaosHost(int host_id);

// Hosts that get a fault injector for `plan`: adversarial co-tenant plans
// (src/adversary/) put one attacker on EVERY host — the adversary-fleet
// protocol — while stochastic chaos keeps the quarter-fleet placement. Both
// engines must consult this same predicate, by global host id, or their
// outputs diverge.
bool FleetInjectorHost(int host_id, const FaultPlan& plan);

}  // namespace vsched

#endif  // SRC_CLUSTER_FLEET_OPS_H_
