// Sharded (PDES) fleet execution: the datacenter control plane of
// src/cluster/fleet.h re-architected as a conservative parallel
// discrete-event simulation, selected with `vsched_run --fleet --shards=N`.
//
// Partitioning. Hosts are grouped into fixed *cells* of
// FleetSpec::cell_hosts contiguous hosts. Each cell is one logical process:
// it owns a private Simulation (event queue, timer wheel, RNG stream) plus
// every entity pinned to its hosts — VM stacks, probes, workload apps, fault
// injectors. A cell is also the migration domain: consolidation drains VMs
// within a cell only (rack locality), which is what keeps a live-migrating
// VM's pending timers inside one event queue. The partition is a function of
// the spec alone — never of --shards — so the simulated behaviour cannot
// depend on the worker-thread count.
//
// Synchronization. Time advances in lookahead windows of
// W = gcd(control_period, boot_delay, migration_copy_latency,
// migration_downtime): the conservative PDES bound, since no control-plane
// interaction takes effect in less than W and every control-plane delay is a
// multiple of W. Within a window (T, T+W] each cell advances its Simulation
// independently — worker threads from the runner's pool when --shards > 1,
// in cell order on the caller's thread otherwise. At each barrier T all
// cells are quiesced at exactly now() == T and the single-threaded
// coordinator runs: it drains the ShardMailbox in canonical
// (due, origin, seq) order (arrivals, boot completions, migration phases,
// departures), then on the control cadence reads host state directly —
// safe, because nothing is running — for telemetry, provisioning, and
// consolidation decisions whose delayed effects are posted back through the
// mailbox.
//
// Determinism. The JSONL a sharded fleet run emits is byte-identical for
// every --shards value (the vsched_run_fleet_sharded ctest), the same
// guarantee class as the runner's --jobs: the coordinator is sequential, the
// mailbox order is canonical, cells share no mutable state inside a window,
// and per-cell PerfCounters keep even the hot-path tallies race-free (merged
// in cell order at Finish). Sharded output is its own deterministic contract
// — it is not required to byte-match the sequential engine, whose arrivals
// are not quantized to barriers and whose RNG streams fork from one root.
//
// See docs/PERF.md ("Sharded fleet execution") for the lookahead derivation
// and docs/CLUSTER.md for the operator view.
#ifndef SRC_CLUSTER_SHARDED_FLEET_H_
#define SRC_CLUSTER_SHARDED_FLEET_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/base/perf_counters.h"
#include "src/base/thread_pool.h"
#include "src/base/time.h"
#include "src/cluster/fleet.h"
#include "src/cluster/fleet_spec.h"
#include "src/cluster/placement.h"
#include "src/core/config.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/sim/rng.h"
#include "src/sim/shard_mailbox.h"
#include "src/sim/simulation.h"
#include "src/stats/stats.h"

namespace vsched {

// One logical process of the sharded engine: a contiguous host range behind
// a private Simulation. Exactly one thread touches a cell inside any window;
// the coordinator touches it only at barriers. `counters` is the cell's
// PerfCounters sink — installed via PerfCounters::Scope around construction
// and every window so the pointer components cache at construction is the
// cell's own, keeping tallies race-free at any shard count.
struct FleetCell {
  int id = 0;
  int first_host = 0;
  PerfCounters counters;
  std::unique_ptr<Simulation> sim;
  std::vector<std::unique_ptr<ClusterHost>> hosts;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
};

class ShardedFleet {
 public:
  // `shards` is the worker-thread count (>= 1); 1 runs cells sequentially on
  // the calling thread. The cell partition comes from spec.cell_hosts and is
  // independent of `shards`.
  ShardedFleet(FleetSpec spec, uint64_t seed, VSchedOptions guest_options, int shards,
               const FaultPlan* fault_plan = nullptr, bool tickless = false);
  ~ShardedFleet();

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  // Runs the whole experiment: arrival schedule, window loop to `horizon`,
  // stats harvest. Call once. Throws SimBudgetExceeded (deterministically,
  // lowest cell id first) when a per-cell event budget trips.
  void Run(TimeNs horizon);

  const FleetTotals& totals() const { return totals_; }
  const FleetSpec& spec() const { return spec_; }
  TimeNs window() const { return window_; }
  int num_cells() const { return static_cast<int>(cells_.size()); }
  int shards() const { return shards_; }
  int hosts_on() const;
  const ClusterHost& host(int id) const;
  const TenantVm& tenant(int id) const { return *tenants_[static_cast<size_t>(id)]; }
  int num_tenants() const { return static_cast<int>(tenants_.size()); }

  // Deterministic runaway-run watchdog, applied to each cell's Simulation.
  void SetEventBudgetPerCell(uint64_t budget);
  uint64_t events_dispatched() const;  // summed over cells

 private:
  FleetCell* CellOfHost(int host_id);
  const FleetCell* CellOfHost(int host_id) const;
  int CapacityVcpus() const;
  std::vector<HostLoadView> LoadViews() const;
  TimeNs NextBarrierAtOrAfter(TimeNs t) const;

  void ScheduleArrivals(TimeNs start);
  void BarrierPhase(TimeNs now);
  void RunCellsUntil(TimeNs deadline);
  void Finish(TimeNs now);

  void OnVmArrival(int tenant_id, TimeNs now);
  bool TryPlace(TenantVm* tenant, TimeNs now);
  void PlacePending(TimeNs now);
  void BootHostsIfNeeded(TimeNs now);
  void OnBootComplete(int host_id, TimeNs now);
  void ControlTick(TimeNs now);
  void SampleEnergyAndUtil(TimeNs now);
  void MaybeConsolidate(TimeNs now);
  void OnMigrationDowntime(int tenant_id, TimeNs now);
  void OnMigrationCommit(int tenant_id, TimeNs now);
  void OnDepartureDue(int tenant_id, TimeNs now);
  void DoDepart(TenantVm* tenant, TimeNs now);
  void HarvestStats(TenantVm* tenant);
  void StopApps(TenantVm* tenant);
  void OccupyThreads(TenantVm* tenant);
  void VacateThreads(TenantVm* tenant);
  void ReshapeThread(ClusterHost* host, HwThreadId tid);

  FleetSpec spec_;
  VSchedOptions guest_options_;
  bool tickless_;
  int shards_;
  TimeNs window_ = 0;
  Rng control_rng_;

  std::shared_ptr<const HostTopology> topology_;
  std::shared_ptr<const HostSchedParams> host_params_;
  std::shared_ptr<const GuestParams> guest_params_;
  std::unique_ptr<PlacementPolicy> placement_;

  // Cells before tenants_: tenants hold Vms whose vCPU threads detach from
  // cell-owned machines at destruction, so tenants must be destroyed first
  // (members die in reverse declaration order).
  std::vector<std::unique_ptr<FleetCell>> cells_;
  std::vector<std::unique_ptr<TenantVm>> tenants_;
  std::deque<int> pending_;  // arrived but unplaced tenant ids, FIFO
  ShardMailbox mailbox_;
  std::unique_ptr<ThreadPool> pool_;  // null when shards_ == 1

  TimeNs start_time_ = 0;
  TimeNs last_sample_ = 0;
  double util_integral_ = 0;     // sum over On hosts of util * dt
  double on_time_integral_ = 0;  // sum over On hosts of dt

  Distribution fleet_latency_;
  Distribution tenant_p99s_;
  FleetTotals totals_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace vsched

#endif  // SRC_CLUSTER_SHARDED_FLEET_H_
