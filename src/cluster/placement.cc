#include "src/cluster/placement.h"

namespace vsched {
namespace {

double LoadRatio(const HostLoadView& host) {
  if (host.capacity_vcpus <= 0) {
    return 1.0;
  }
  return static_cast<double>(host.committed_vcpus) / static_cast<double>(host.capacity_vcpus);
}

bool Fits(const HostLoadView& host, int vcpus) {
  return host.accepts_vms && host.committed_vcpus + vcpus <= host.capacity_vcpus;
}

}  // namespace

int GreedyLoadPolicy::Pick(const std::vector<HostLoadView>& hosts, int vcpus,
                           int exclude_host) const {
  int best = -1;
  double best_load = 0;
  for (const HostLoadView& host : hosts) {
    if (host.host_id == exclude_host || !Fits(host, vcpus)) {
      continue;
    }
    double load = LoadRatio(host);
    if (best == -1 || load < best_load) {  // tie keeps the lowest host id
      best = host.host_id;
      best_load = load;
    }
  }
  return best;
}

int BestFitPolicy::Pick(const std::vector<HostLoadView>& hosts, int vcpus,
                        int exclude_host) const {
  int best = -1;
  double best_load = 0;
  for (const HostLoadView& host : hosts) {
    if (host.host_id == exclude_host || !Fits(host, vcpus)) {
      continue;
    }
    double load = LoadRatio(host);
    if (best == -1 || load > best_load) {  // tie keeps the lowest host id
      best = host.host_id;
      best_load = load;
    }
  }
  return best;
}

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const std::string& name) {
  if (name == "greedy-load") {
    return std::make_unique<GreedyLoadPolicy>();
  }
  if (name == "best-fit") {
    return std::make_unique<BestFitPolicy>();
  }
  return nullptr;
}

}  // namespace vsched
