// The datacenter control plane: thousands of simulated hosts under one
// discrete-event Simulation, each hosting multiple guest VM stacks.
//
// A Fleet owns ClusterHosts (HostMachine + power state + energy/utilization
// accounting) and TenantVms (Vm + guest kernel + VSched + an open-loop
// LatencyApp). The control plane is itself event-driven: VM arrivals are a
// Poisson process, placement is a pluggable policy (src/cluster/placement.h),
// provisioning is reactive (hosts boot on demand, idle hosts power down),
// consolidation drains under-committed hosts via live migration modeled as a
// (copy-latency, downtime) event pair — during downtime the VM's vCPU
// threads are paused, which the guest observes as steal.
//
// Determinism: every decision is a function of simulation events and one RNG
// stream forked from the Simulation's root, so a (FleetSpec, seed, options)
// triple replays byte-identically — the property the vsched_run_fleet ctest
// asserts across --jobs values.
#ifndef SRC_CLUSTER_FLEET_H_
#define SRC_CLUSTER_FLEET_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/cluster/fleet_spec.h"
#include "src/cluster/placement.h"
#include "src/core/config.h"
#include "src/core/vsched.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/rng.h"
#include "src/sim/simulation.h"
#include "src/stats/stats.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/throughput_app.h"

namespace vsched {

enum class HostPower { kOff, kBooting, kOn };

// One physical host plus the control-plane state the fleet keeps about it.
struct ClusterHost {
  int id = 0;
  std::unique_ptr<HostMachine> machine;
  HostPower power = HostPower::kOff;
  int committed_vcpus = 0;
  std::vector<int> thread_commits;  // committed vCPUs per hardware thread
  // Live occupants per hardware thread as (tenant id, vcpu index) — the
  // basis for commit-driven bandwidth caps (FleetSpec::cap_period).
  std::vector<std::vector<std::pair<int, int>>> occupants;
  // Rotating start position for first-fit thread reservation (see
  // Fleet::ReserveThreads): successive VMs overlap partially, which is what
  // produces intra-VM vCPU asymmetry.
  int reserve_cursor = 0;
  TimeNs idle_since = 0;  // last time committed_vcpus hit zero
  double energy_j = 0;    // integrated by the control loop
};

// One tenant: the per-VM simulation stack plus its lifecycle bookkeeping.
struct TenantVm {
  int id = 0;
  std::string name;
  int host_id = -1;
  std::vector<HwThreadId> tids;
  std::unique_ptr<Vm> vm;
  std::unique_ptr<VSched> vsched;
  bool batch = false;                       // noisy-neighbor batch tenant
  std::unique_ptr<LatencyApp> app;          // latency tenants only
  std::unique_ptr<TaskParallelApp> batch_app;  // batch tenants only
  // Co-located best-effort (SCHED_IDLE) work inside latency VMs; see
  // FleetSpec::background_tasks_per_vm.
  std::unique_ptr<TaskParallelApp> bg_app;
  TimeNs departs_at = 0;  // 0: lives to the horizon
  bool placed = false;
  bool departed = false;
  bool migrating = false;
  bool depart_pending = false;  // departure arrived mid-migration
  // Reserved migration destination (valid while migrating).
  int mig_dest_host = -1;
  std::vector<HwThreadId> mig_dest_tids;
};

// Aggregated fleet outcome; FillMetrics() flattens this into RunMetrics keys.
struct FleetTotals {
  uint64_t requests = 0;
  uint64_t slo_violations = 0;
  double fleet_p50_ns = 0;
  double fleet_p95_ns = 0;
  double fleet_p99_ns = 0;
  double fleet_mean_ns = 0;
  // Distribution of per-tenant p99s (only tenants that served requests).
  double tenant_p99_p50_ns = 0;
  double tenant_p99_p95_ns = 0;
  double tenant_p99_max_ns = 0;
  int vms_placed = 0;
  int vms_rejected = 0;  // still unplaced at the horizon
  int vms_departed = 0;
  uint64_t batch_chunks = 0;  // work completed by batch tenants
  uint64_t migrations = 0;
  int hosts_booted = 0;
  int hosts_shutdown = 0;
  int hosts_on_at_end = 0;
  double host_util_mean = 0;  // time-weighted mean utilization of On hosts
  double energy_j = 0;
  uint64_t fault_applied = 0;
  // Adversary/robustness aggregates (docs/ROBUSTNESS.md): attacker launches,
  // tenants whose degradation tracker ever transitioned, and the guest-side
  // containment counters summed at harvest. All zero on clean fleets and
  // whenever guests run without robust.enabled.
  uint64_t adversary_activations = 0;
  int degraded_tenants = 0;
  uint64_t pessimistic_publishes = 0;
  uint64_t quarantine_events = 0;
};

class Fleet {
 public:
  // `guest_options` selects the per-guest scheduler stack (Cfs vs Full —
  // the head-to-head axis). `fault_plan` (may be null) arms machine-level
  // chaos on every fourth host, reusing the PR-5 injector with no VM bound.
  Fleet(Simulation* sim, FleetSpec spec, VSchedOptions guest_options,
        const FaultPlan* fault_plan = nullptr, bool tickless = false);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Schedules VM arrivals and the control loop. Call once, then advance the
  // simulation to the horizon.
  void Start();

  // Stops the control loop and every live tenant, harvests their latency
  // distributions, and freezes totals(). Call once, after the horizon.
  void Finish();

  const FleetTotals& totals() const { return totals_; }
  const FleetSpec& spec() const { return spec_; }
  int hosts_on() const;
  const ClusterHost& host(int id) const { return *hosts_[static_cast<size_t>(id)]; }
  const TenantVm& tenant(int id) const { return *tenants_[static_cast<size_t>(id)]; }
  int num_tenants() const { return static_cast<int>(tenants_.size()); }

 private:
  int CapacityVcpus() const;
  std::vector<HostLoadView> LoadViews() const;
  void OnVmArrival(int tenant_id);
  bool TryPlace(TenantVm* tenant);
  void PlacePending();
  void BootHostsIfNeeded();
  void OnBootComplete(int host_id);
  void ControlTick();
  void SampleEnergyAndUtil();
  void MaybeConsolidate();
  void OnMigrationDowntime(int tenant_id);
  void OnMigrationCommit(int tenant_id);
  void DoDepart(TenantVm* tenant);
  void HarvestStats(TenantVm* tenant);
  void StopApps(TenantVm* tenant);
  // Registers/unregisters a placed tenant's vCPUs on its host's threads and
  // re-applies the commit-driven bandwidth caps of every touched thread.
  void OccupyThreads(TenantVm* tenant);
  void VacateThreads(TenantVm* tenant);
  void ReshapeThread(ClusterHost* host, HwThreadId tid);
  void ReleaseCommits(int host_id, const std::vector<HwThreadId>& tids);
  std::vector<HwThreadId> ReserveThreads(ClusterHost* host, int vcpus);

  Simulation* sim_;
  FleetSpec spec_;
  VSchedOptions guest_options_;
  bool tickless_;
  Rng rng_;

  std::shared_ptr<const HostTopology> topology_;
  std::shared_ptr<const HostSchedParams> host_params_;
  std::shared_ptr<const GuestParams> guest_params_;
  std::unique_ptr<PlacementPolicy> placement_;

  std::vector<std::unique_ptr<ClusterHost>> hosts_;
  std::vector<std::unique_ptr<TenantVm>> tenants_;
  std::deque<int> pending_;  // arrived but unplaced tenant ids, FIFO

  std::vector<std::unique_ptr<FaultInjector>> injectors_;

  Simulation::PeriodicHandle* control_loop_ = nullptr;
  TimeNs last_sample_ = 0;
  double util_integral_ = 0;   // sum over On hosts of util * dt
  double on_time_integral_ = 0;  // sum over On hosts of dt
  TimeNs start_time_ = 0;

  Distribution fleet_latency_;
  Distribution tenant_p99s_;
  FleetTotals totals_;
  bool finished_ = false;

  // Liveness token for control-plane event closures: posted lambdas capture
  // a weak_ptr to this and bail out once the Fleet is gone (the PR-6
  // pattern, enforced by vsched-lint's event-lifetime rule). Must be the
  // last member so it expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_CLUSTER_FLEET_H_
