#include "src/cluster/fleet_spec.h"

namespace vsched {
namespace {

// Deliberately small hosts: the interesting regime is committed vCPUs above
// the hardware thread count (stacking -> steal), and with overcommit 2.0 an
// 8-thread host reaches it at 9 committed vCPUs. Bigger hosts would need
// proportionally more VMs per host to produce any contention at all.
TopologySpec FleetHostTopology() {
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 4;
  topo.threads_per_core = 2;
  return topo;
}

FleetSpec BaseSpec() {
  FleetSpec spec;
  spec.host_topology = FleetHostTopology();
  return spec;
}

// 4 hosts, 10 short-lived 2-vCPU VMs: small enough for a CI smoke run, yet
// churny enough (fast arrivals, ~150 ms lifetimes, aggressive consolidation)
// that boots, migrations, and power-downs all occur within a ~1 s horizon.
FleetSpec TinyFleet() {
  FleetSpec spec = BaseSpec();
  spec.name = "tiny";
  spec.host_topology.cores_per_socket = 2;  // 4 threads: 20 vCPUs overflow
  spec.hosts = 4;
  spec.initial_hosts_on = 2;
  spec.vms = 10;
  spec.vcpus_per_vm = 2;
  spec.arrival_window = MsToNs(100);
  spec.vm_lifetime_mean = MsToNs(150);
  spec.requests_per_sec_per_vcpu = 200.0;
  spec.service_mean = MsToNs(1);
  spec.slo_latency = MsToNs(10);
  spec.control_period = MsToNs(10);
  spec.consolidate_below = 0.6;
  spec.boot_delay = MsToNs(20);
  spec.idle_shutdown_after = MsToNs(40);
  spec.migration_copy_latency = MsToNs(10);
  spec.migration_downtime = MsToNs(1);
  // Two 2-host cells: even the CI smoke preset exercises the multi-cell
  // barrier/mailbox machinery of --shards (and cross-cell placement).
  spec.cell_hosts = 2;
  return spec;
}

FleetSpec SmallFleet() {
  FleetSpec spec = BaseSpec();
  spec.name = "small";
  spec.hosts = 16;
  spec.initial_hosts_on = 4;
  spec.vms = 48;
  spec.vcpus_per_vm = 4;
  spec.arrival_window = MsToNs(300);
  // Long enough for probe estimates to converge (~200 ms cadence) and for
  // the head-to-head to measure steady service, short enough that a 6 s
  // horizon still sees departures, consolidation, and power-down.
  spec.vm_lifetime_mean = MsToNs(2000);
  spec.control_period = MsToNs(20);
  spec.consolidate_below = 0.4;
  return spec;
}

FleetSpec RackFleet() {
  FleetSpec spec = BaseSpec();
  spec.name = "rack";
  spec.hosts = 64;
  spec.initial_hosts_on = 16;
  spec.vms = 256;
  spec.vcpus_per_vm = 4;
  spec.arrival_window = MsToNs(500);
  spec.vm_lifetime_mean = MsToNs(2000);
  return spec;
}

FleetSpec DcFleet() {
  FleetSpec spec = BaseSpec();
  spec.name = "dc";
  spec.hosts = 1000;
  spec.initial_hosts_on = 250;
  spec.vms = 4000;
  spec.vcpus_per_vm = 4;
  spec.arrival_window = MsToNs(1000);
  spec.vm_lifetime_mean = MsToNs(2000);
  return spec;
}

}  // namespace

bool LookupFleetSpec(const std::string& name, FleetSpec* spec) {
  if (name == "tiny") {
    *spec = TinyFleet();
  } else if (name == "small") {
    *spec = SmallFleet();
  } else if (name == "rack") {
    *spec = RackFleet();
  } else if (name == "dc") {
    *spec = DcFleet();
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> FleetSpecNames() { return {"tiny", "small", "rack", "dc"}; }

}  // namespace vsched
