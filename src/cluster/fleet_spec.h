// Declarative description of a simulated datacenter fleet.
//
// A FleetSpec names everything the cluster control plane needs: the host
// shape and count, the VM population (size, Poisson arrival window,
// exponential lifetimes), the open-loop request traffic each tenant runs,
// the SLO bound, the placement/provisioning/migration policy knobs, and the
// energy model. Like RunSpec, a FleetSpec plus a seed fully determines a
// run: two executions are byte-identical.
#ifndef SRC_CLUSTER_FLEET_SPEC_H_
#define SRC_CLUSTER_FLEET_SPEC_H_

#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/host/topology.h"

namespace vsched {

struct FleetSpec {
  std::string name = "fleet";

  // ---- Hosts ----
  int hosts = 64;
  // Hosts powered on at t=0; the reactive provisioner boots the rest on
  // demand (kOff -> kBooting -> kOn after boot_delay).
  int initial_hosts_on = 16;
  TopologySpec host_topology;  // presets use 1 socket x 8 cores x 2 SMT

  // ---- VM population ----
  int vms = 256;
  int vcpus_per_vm = 4;
  // VM arrivals form a Poisson process with mean inter-arrival
  // arrival_window / vms, i.e. the population ramps over roughly this long.
  TimeNs arrival_window = MsToNs(500);
  // Exponential VM lifetime mean; 0 means VMs live until the horizon.
  // Departures free capacity, which drives consolidation and power-down.
  TimeNs vm_lifetime_mean = 0;

  // ---- Tenant traffic (open-loop latency app per VM) ----
  double requests_per_sec_per_vcpu = 40.0;
  TimeNs service_mean = MsToNs(3);
  double service_cv = 0.3;
  // Per-request SLO bound on end-to-end latency.
  TimeNs slo_latency = MsToNs(30);

  // ---- Tenant mix ----
  // Every batch_every-th VM (by arrival order; 0 disables) is a CPU-bound
  // batch tenant (task-parallel, ~full-vCPU demand) instead of a latency
  // tenant. Batch tenants are the noisy neighbors: vCPUs stacked with them
  // see far less capacity than vCPUs stacked with idle ones, which is the
  // heterogeneity vSched's probing exploits. SLO metrics cover latency
  // tenants only; batch progress is reported as batch_chunks.
  int batch_every = 2;
  // Best-effort SCHED_IDLE spinner tasks co-located *inside* each latency
  // VM (0 disables). In the guest they yield instantly to request work, but
  // they keep the vCPUs' host bandwidth quotas drained, so vCPUs are
  // routinely mid-throttle when a request arrives — the restricted-capacity
  // regime of the paper's §2/Fig 18. Guest CFS places onto a throttled vCPU
  // blindly (a SCHED_IDLE-only queue looks idle); vact's activity model is
  // what lets vSched route around it.
  int background_tasks_per_vm = 2;

  // ---- Guest probing cadence (vSched guests only) ----
  // The defaults in VcapConfig (100 ms windows every 1 s) suit long-lived
  // single-VM experiments; at fleet timescales a heavy (normal-priority)
  // window that long stalls a tenant for several SLOs. Fleet guests probe
  // with short windows at a tighter cadence instead, keeping the heavy duty
  // cycle near the paper's ~1% overhead target.
  // A heavy (normal-priority) probe window blocks co-located request work
  // for its full length, so the window length is a p99 floor for vSched
  // guests; 2 ms windows at a 200 ms cadence keep the duty cycle at the
  // paper's ~1% target while still converging within a fleet VM lifetime.
  TimeNs probe_window = MsToNs(2);
  TimeNs probe_interval = MsToNs(200);
  int probe_heavy_every = 4;
  // rwc straggler criterion for fleet guests. The paper's ratio (0.1,
  // "10x lower") assumes *persistent* host-side shaping; under fleet churn
  // a vCPU's capacity dips transiently when a batch neighbor lands on its
  // thread, and banning it throws away a quarter of the VM right when load
  // is high (measured: ~4x worse p99 than leaving it on). 0 disables
  // straggler bans; stacking bans are unaffected.
  double rwc_straggler_ratio = 0.0;

  // ---- Host-side vCPU shaping (the paper's §2 cloud reality) ----
  // Hosts enforce fair sharing of an oversubscribed hardware thread with CFS
  // bandwidth caps: a thread carrying k vCPUs caps each at quota
  // cap_period / k per cap_period. Capacity becomes ~1/k and the vCPU sits
  // inactive for up to (1 - 1/k) * cap_period at a stretch — the shaped
  // capacity/latency profile of §5.1 and the heterogeneous vCPU abstraction
  // the guest-side probers exist to discover. 0 disables capping (stacked
  // vCPUs then contend through the host runqueue only).
  TimeNs cap_period = MsToNs(20);
  // Host scheduler slice/preemption coarseness. Cloud hosts run coarse
  // slices to bound context-switch overhead at high vCPU counts; the paper's
  // §2 measurements put real-cloud vCPU latency at several ms for exactly
  // this reason (and Fig 2 shapes it through these same knobs). A waking
  // latency-sensitive vCPU stacked behind a busy neighbor waits up to
  // roughly this long per co-runner.
  TimeNs host_min_granularity = MsToNs(6);
  TimeNs host_wakeup_granularity = MsToNs(6);

  // ---- Placement ----
  // "greedy-load" (least committed load first, the spreading default) or
  // "best-fit" (most committed host that still fits, consolidating).
  std::string placement = "greedy-load";
  // A host accepts vCPU commitments up to threads * overcommit.
  double overcommit = 3.0;

  // ---- Control loop (telemetry + provisioning + consolidation) ----
  TimeNs control_period = MsToNs(25);
  // Source threshold for consolidation: an On host with committed load in
  // (0, consolidate_below] gets one VM migrated to a busier host per tick.
  double consolidate_below = 0.25;
  int min_hosts_on = 1;
  TimeNs boot_delay = MsToNs(50);
  // An On host with zero committed vCPUs for this long powers off.
  TimeNs idle_shutdown_after = MsToNs(100);

  // ---- Live migration model: (copy latency, downtime) event pair ----
  TimeNs migration_copy_latency = MsToNs(40);
  TimeNs migration_downtime = MsToNs(2);

  // ---- Sharded execution (vsched_run --fleet --shards=N) ----
  // Hosts are grouped into fixed cells of this many contiguous hosts; each
  // cell is one logical process of the PDES engine (own event queue, timer
  // wheel, RNG) and one migration domain — consolidation drains within a
  // cell, mirroring rack-locality constraints real placement respects.
  // Deliberately part of the *spec*, not the CLI: the partition must not
  // depend on --shards, or output could not be byte-identical across shard
  // counts. The sequential Fleet engine ignores it.
  int cell_hosts = 8;

  // ---- Energy model (watts; integrated over the horizon) ----
  double off_watts = 10.0;
  double booting_watts = 100.0;
  double idle_watts = 100.0;
  double busy_watts = 250.0;  // at 100% hardware-thread utilization
};

// Canned presets, smallest to largest:
//   tiny  —    4 hosts,   10 VMs x 2 vCPU (CI smoke / determinism ctest)
//   small —   16 hosts,   48 VMs x 4 vCPU
//   rack  —   64 hosts,  256 VMs x 4 vCPU (bench_perf_core fleet_small)
//   dc    — 1000 hosts, 4000 VMs x 4 vCPU (the headline scale target)
bool LookupFleetSpec(const std::string& name, FleetSpec* spec);
std::vector<std::string> FleetSpecNames();

}  // namespace vsched

#endif  // SRC_CLUSTER_FLEET_SPEC_H_
