// Pluggable VM placement policies for the fleet control plane.
//
// A policy sees a load view of every host (power state, committed vCPUs,
// capacity) and picks the host a VM's vCPUs should be committed to. Both
// built-in policies are deterministic: ties break on the lowest host id, and
// the load measure is committed vCPUs (control-plane state), not sampled
// utilization, so a decision depends only on the event history.
#ifndef SRC_CLUSTER_PLACEMENT_H_
#define SRC_CLUSTER_PLACEMENT_H_

#include <memory>
#include <string>
#include <vector>

namespace vsched {

// What a placement policy may consult about a host.
struct HostLoadView {
  int host_id = 0;
  bool accepts_vms = false;  // powered on (not off/booting)
  int committed_vcpus = 0;
  int capacity_vcpus = 0;  // hardware threads * overcommit
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Picks the host to place `vcpus` committed vCPUs on, or -1 when no
  // accepting host fits. `exclude_host` (-1 for none) removes a host from
  // consideration (migration sources exclude themselves).
  virtual int Pick(const std::vector<HostLoadView>& hosts, int vcpus,
                   int exclude_host = -1) const = 0;

  virtual const char* name() const = 0;
};

// Least committed load ratio first (spreads; worst-fit flavor).
class GreedyLoadPolicy : public PlacementPolicy {
 public:
  int Pick(const std::vector<HostLoadView>& hosts, int vcpus, int exclude_host) const override;
  const char* name() const override { return "greedy-load"; }
};

// Highest committed load ratio that still fits (packs; consolidating).
class BestFitPolicy : public PlacementPolicy {
 public:
  int Pick(const std::vector<HostLoadView>& hosts, int vcpus, int exclude_host) const override;
  const char* name() const override { return "best-fit"; }
};

// Factory for FleetSpec::placement; returns nullptr for an unknown name.
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const std::string& name);

}  // namespace vsched

#endif  // SRC_CLUSTER_PLACEMENT_H_
