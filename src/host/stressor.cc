#include "src/host/stressor.h"

#include "src/base/check.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {

Stressor::Stressor(Simulation* sim, std::string name, double weight, bool rt)
    : HostEntity(std::move(name), weight, rt), sim_(sim) {}

Stressor::~Stressor() { Stop(); }

void Stressor::Start(HostMachine* machine, HwThreadId tid) {
  VSCHED_CHECK(!attached());
  machine_ = machine;
  machine_->Attach(this, tid);
  SetWantsToRun(true);
}

void Stressor::StartDutyCycle(HostMachine* machine, HwThreadId tid, TimeNs on, TimeNs off) {
  VSCHED_CHECK(!attached());
  VSCHED_CHECK(on > 0 && off >= 0);
  machine_ = machine;
  on_ = on;
  off_ = off;
  machine_->Attach(this, tid);
  SetWantsToRun(true);
  if (off_ > 0) {
    ArmToggle(on_, /*next_on=*/false);
  }
}

void Stressor::Stop() {
  if (!attached()) {
    return;
  }
  sim_->Cancel(toggle_event_);
  toggle_event_.Invalidate();
  SetWantsToRun(false);
  machine_->sched(tid()).Detach(this);
}

void Stressor::ArmToggle(TimeNs delay, bool next_on) {
  toggle_event_ = sim_->After(
      delay, [this, next_on, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) {
          return;
        }
        SetWantsToRun(next_on);
        ArmToggle(next_on ? on_ : off_, !next_on);
      });
}

}  // namespace vsched
