// Physical machine topology: sockets → cores → SMT hardware threads.
//
// Models the scheduler-visible properties of the paper's testbed (HPE DL580
// Gen10, 4× Xeon Gold 6138): SMT sibling contention, per-core DVFS frequency
// multipliers, and the cache-line transfer distances that vtop measures
// (Figure 10b: ~6 ns SMT, ~48 ns intra-socket, ~112 ns cross-socket).
#ifndef SRC_HOST_TOPOLOGY_H_
#define SRC_HOST_TOPOLOGY_H_

#include <vector>

#include "src/base/time.h"

namespace vsched {

// Index of a hardware thread on the host machine.
using HwThreadId = int;

struct TopologySpec {
  int sockets = 1;
  int cores_per_socket = 16;
  int threads_per_core = 2;

  // Per-thread capacity multiplier when the SMT sibling is busy. 0.6 matches
  // the commonly observed ~20% total SMT speedup (2 × 0.6 = 1.2).
  double smt_factor = 0.6;

  // Cache-line transfer latencies between hardware threads (ns), calibrated
  // to Figure 10b.
  double lat_smt_ns = 6.0;
  double lat_socket_ns = 48.0;
  double lat_cross_socket_ns = 112.0;
};

// Relationship between two hardware threads, ordered by increasing distance.
enum class HwDistance {
  kSame = 0,         // identical hardware thread (stacked vCPUs land here)
  kSmtSibling = 1,   // same core, different hardware thread
  kSameSocket = 2,   // same socket, different core
  kCrossSocket = 3,  // different sockets
};

class HostTopology {
 public:
  explicit HostTopology(const TopologySpec& spec);

  const TopologySpec& spec() const { return spec_; }
  int num_threads() const { return num_threads_; }
  int num_cores() const { return num_cores_; }
  int num_sockets() const { return spec_.sockets; }

  int CoreOf(HwThreadId t) const;
  int SocketOf(HwThreadId t) const;

  // The other hardware thread on the same core, or -1 when SMT is off.
  HwThreadId SiblingOf(HwThreadId t) const;

  // Hardware threads of core `core`, in id order.
  std::vector<HwThreadId> ThreadsOfCore(int core) const;

  HwDistance DistanceClass(HwThreadId a, HwThreadId b) const;

  // Cache-line transfer latency between two hardware threads, per spec.
  double CacheLatencyNs(HwThreadId a, HwThreadId b) const;

 private:
  TopologySpec spec_;
  int num_cores_;
  int num_threads_;
};

}  // namespace vsched

#endif  // SRC_HOST_TOPOLOGY_H_
