// The host machine: topology + per-core frequency + one CpuSched per
// hardware thread. Computes effective speeds (capacity units) including SMT
// contention and DVFS, and fans rate-change notifications out to affected
// running entities.
#ifndef SRC_HOST_MACHINE_H_
#define SRC_HOST_MACHINE_H_

#include <memory>
#include <vector>

#include "src/base/time.h"
#include "src/host/cpu_sched.h"
#include "src/host/topology.h"

namespace vsched {

class Simulation;

class HostMachine {
 public:
  HostMachine(Simulation* sim, const TopologySpec& spec,
              HostSchedParams sched_params = HostSchedParams{});

  // Fleet-scale constructor: thousands of identical hosts share one immutable
  // topology and one scheduler-params snapshot instead of building their own.
  HostMachine(Simulation* sim, std::shared_ptr<const HostTopology> topology,
              std::shared_ptr<const HostSchedParams> sched_params);

  HostMachine(const HostMachine&) = delete;
  HostMachine& operator=(const HostMachine&) = delete;

  const HostTopology& topology() const { return *topology_; }
  std::shared_ptr<const HostTopology> shared_topology() const { return topology_; }
  Simulation* sim() const { return sim_; }
  int num_threads() const { return topology_->num_threads(); }

  CpuSched& sched(HwThreadId tid);
  const CpuSched& sched(HwThreadId tid) const;

  // Effective speed of hardware thread `tid` in capacity units
  // (kCapacityScale × freq × SMT factor). This is the rate at which the
  // currently running entity's work progresses.
  double SpeedOf(HwThreadId tid) const;

  // DVFS: scales a core's frequency; propagates rate changes to entities
  // running on either of its hardware threads.
  void SetCoreFreq(int core, double multiplier);
  double CoreFreq(int core) const { return core_freq_[core]; }

  // Convenience: attach an entity to a hardware thread / move it.
  void Attach(HostEntity* e, HwThreadId tid);
  void Move(HostEntity* e, HwThreadId tid);

  // Invoked by CpuSched when its busy state flipped: the SMT sibling's
  // running entity (if any) must recompute its progress rate.
  void OnBusyChanged(HwThreadId tid);

 private:
  Simulation* sim_;
  std::shared_ptr<const HostTopology> topology_;
  std::vector<double> core_freq_;
  std::vector<std::unique_ptr<CpuSched>> scheds_;
};

}  // namespace vsched

#endif  // SRC_HOST_MACHINE_H_
