#include "src/host/machine.h"

#include <memory>
#include <utility>

#include "src/base/check.h"
#include "src/sim/simulation.h"

namespace vsched {

HostMachine::HostMachine(Simulation* sim, const TopologySpec& spec, HostSchedParams sched_params)
    : HostMachine(sim, std::make_shared<const HostTopology>(spec),
                  std::make_shared<const HostSchedParams>(sched_params)) {}

HostMachine::HostMachine(Simulation* sim, std::shared_ptr<const HostTopology> topology,
                         std::shared_ptr<const HostSchedParams> sched_params)
    : sim_(sim), topology_(std::move(topology)), core_freq_(topology_->num_cores(), 1.0) {
  scheds_.reserve(topology_->num_threads());
  for (int t = 0; t < topology_->num_threads(); ++t) {
    scheds_.push_back(std::make_unique<CpuSched>(sim, this, t, sched_params));
  }
}

CpuSched& HostMachine::sched(HwThreadId tid) {
  VSCHED_CHECK(tid >= 0 && tid < num_threads());
  return *scheds_[tid];
}

const CpuSched& HostMachine::sched(HwThreadId tid) const {
  VSCHED_CHECK(tid >= 0 && tid < num_threads());
  return *scheds_[tid];
}

double HostMachine::SpeedOf(HwThreadId tid) const {
  double speed = kCapacityScale * core_freq_[topology_->CoreOf(tid)];
  HwThreadId sibling = topology_->SiblingOf(tid);
  if (sibling >= 0 && scheds_[sibling]->busy()) {
    speed *= topology_->spec().smt_factor;
  }
  return speed;
}

void HostMachine::SetCoreFreq(int core, double multiplier) {
  VSCHED_CHECK(core >= 0 && core < topology_->num_cores());
  VSCHED_CHECK(multiplier > 0);
  if (core_freq_[core] == multiplier) {
    return;
  }
  core_freq_[core] = multiplier;
  TimeNs now = sim_->now();
  for (HwThreadId t : topology_->ThreadsOfCore(core)) {
    scheds_[t]->NotifyRateChanged(now);
  }
}

void HostMachine::Attach(HostEntity* e, HwThreadId tid) { sched(tid).Attach(e); }

void HostMachine::Move(HostEntity* e, HwThreadId tid) {
  VSCHED_CHECK(e->attached());
  if (e->tid() == tid) {
    return;
  }
  sched(e->tid()).Detach(e);
  sched(tid).Attach(e);
}

void HostMachine::OnBusyChanged(HwThreadId tid) {
  HwThreadId sibling = topology_->SiblingOf(tid);
  if (sibling >= 0) {
    scheds_[sibling]->NotifyRateChanged(sim_->now());
  }
}

}  // namespace vsched
