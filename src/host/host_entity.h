// A host-schedulable context: a vCPU thread or a host-level task.
//
// Host entities are time-shared on one hardware thread by CpuSched. The
// entity exposes "wants to run" (a vCPU wants to run when its guest has
// runnable work; a stressor toggles it on a duty cycle) and receives
// scheduled-in/out and rate-change callbacks. Accounting distinguishes
// running, stolen (runnable or throttled but not running — what the guest
// observes as steal time), and halted time.
#ifndef SRC_HOST_HOST_ENTITY_H_
#define SRC_HOST_HOST_ENTITY_H_

#include <string>

#include "src/base/time.h"
#include "src/sim/timer_wheel.h"

namespace vsched {

class CpuSched;
class Simulation;

class HostEntity {
 public:
  // `rt` entities strictly preempt fair-class ones (models the host-side
  // high-priority stressor used in the straggler experiments).
  HostEntity(std::string name, double weight = 1024.0, bool rt = false);
  virtual ~HostEntity();

  HostEntity(const HostEntity&) = delete;
  HostEntity& operator=(const HostEntity&) = delete;

  const std::string& name() const { return name_; }
  double weight() const { return weight_; }
  bool rt() const { return rt_; }

  // CFS-bandwidth-style cap: at most `quota` of runtime per `period`.
  // Must be set before the entity is attached, or while detached.
  void SetBandwidth(TimeNs quota, TimeNs period);
  void ClearBandwidth();
  bool has_bandwidth() const { return bw_period_ > 0; }
  TimeNs bw_quota() const { return bw_quota_; }
  TimeNs bw_period() const { return bw_period_; }

  // Owner-driven demand. A transition to true makes the entity eligible; to
  // false it is dequeued (vCPU halt). Safe to call when unattached.
  void SetWantsToRun(bool wants);
  bool wants_to_run() const { return wants_to_run_; }

  // Migration blackout: a paused entity stays attached (tid() remains valid,
  // so topology queries keep working) but never enters the runqueue. Paused
  // time with pending demand accounts as steal — exactly what a guest
  // observes during a live-migration downtime window. Safe when unattached.
  void SetPaused(bool paused);
  bool paused() const { return paused_; }

  bool running() const { return running_; }
  double vruntime() const { return vruntime_; }
  bool throttled() const { return throttled_; }
  bool attached() const { return sched_ != nullptr; }

  // Hardware thread this entity is attached to (-1 when detached).
  int tid() const;

  // Accumulated accounting (updated lazily; call Sync* first for precision).
  TimeNs ran_ns(TimeNs now) const;
  TimeNs steal_ns(TimeNs now) const;
  TimeNs halted_ns(TimeNs now) const;

 protected:
  // Invoked by CpuSched. `now` is the simulation time of the transition.
  virtual void ScheduledIn(TimeNs now) { (void)now; }
  virtual void ScheduledOut(TimeNs now) { (void)now; }
  // The effective speed of the underlying hardware thread changed (SMT
  // sibling busy-state or frequency change) while this entity is running.
  virtual void RateChanged(TimeNs now) { (void)now; }

 private:
  friend class CpuSched;

  // Folds elapsed time since the last transition into the accumulators.
  void SyncAccounting(TimeNs now) const;

  std::string name_;
  double weight_;
  bool rt_;

  // Scheduler state, owned by CpuSched.
  CpuSched* sched_ = nullptr;
  double vruntime_ = 0;
  bool wants_to_run_ = false;
  bool running_ = false;
  bool throttled_ = false;
  bool queued_ = false;
  bool paused_ = false;

  // Bandwidth control. The refill is a periodic wheel timer (timer band);
  // bw_refill_origin_ pins its grid so a dormant refill (tickless hosts park
  // the timer while the entity is off-CPU, unthrottled, and fully refilled)
  // resumes on exactly the phase it would have kept. bw_refill_armed_ is the
  // dormancy flag; CpuSched::PickNext re-arms before the entity runs again.
  TimeNs bw_quota_ = 0;
  TimeNs bw_period_ = 0;
  TimeNs bw_used_ = 0;
  TimerId bw_refill_timer_ = kInvalidTimerId;
  TimeNs bw_refill_origin_ = 0;
  bool bw_refill_armed_ = false;

  // Accounting.
  mutable TimeNs acct_last_ = 0;
  mutable TimeNs acct_ran_ = 0;
  mutable TimeNs acct_steal_ = 0;
  mutable TimeNs acct_halted_ = 0;
};

}  // namespace vsched

#endif  // SRC_HOST_HOST_ENTITY_H_
