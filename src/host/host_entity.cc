#include "src/host/host_entity.h"

#include "src/base/check.h"
#include "src/host/cpu_sched.h"

namespace vsched {

HostEntity::HostEntity(std::string name, double weight, bool rt)
    : name_(std::move(name)), weight_(weight), rt_(rt) {
  VSCHED_CHECK(weight_ > 0);
}

HostEntity::~HostEntity() {
  // Entities must be detached before destruction; CpuSched holds raw
  // pointers. Detaching here would need the simulation clock, so insist the
  // owner does it explicitly (VcpuThread/Stressor do).
  VSCHED_CHECK_MSG(sched_ == nullptr, "HostEntity destroyed while attached");
}

void HostEntity::SetBandwidth(TimeNs quota, TimeNs period) {
  VSCHED_CHECK_MSG(sched_ == nullptr, "set bandwidth before attaching");
  VSCHED_CHECK(quota > 0 && period > 0 && quota <= period);
  bw_quota_ = quota;
  bw_period_ = period;
  bw_used_ = 0;
}

void HostEntity::ClearBandwidth() {
  VSCHED_CHECK_MSG(sched_ == nullptr, "clear bandwidth before attaching");
  bw_quota_ = 0;
  bw_period_ = 0;
  bw_used_ = 0;
  throttled_ = false;
}

void HostEntity::SetWantsToRun(bool wants) {
  if (wants == wants_to_run_) {
    return;
  }
  if (sched_ != nullptr) {
    // Attribute the elapsed interval under the *old* demand state before the
    // flag flips, or halted time would be misread as steal (and vice versa).
    SyncAccounting(sched_->now());
  }
  wants_to_run_ = wants;
  if (sched_ == nullptr) {
    return;
  }
  if (wants) {
    sched_->EntityWoke(this);
  } else {
    sched_->EntitySlept(this);
  }
}

void HostEntity::SetPaused(bool paused) {
  if (paused == paused_) {
    return;
  }
  if (sched_ != nullptr) {
    SyncAccounting(sched_->now());
  }
  paused_ = paused;
  if (sched_ == nullptr) {
    return;
  }
  if (paused) {
    if (running_ || queued_) {
      sched_->EntitySlept(this);
    }
  } else if (wants_to_run_ && !throttled_) {
    sched_->EntityWoke(this);
  }
}

int HostEntity::tid() const { return sched_ != nullptr ? sched_->tid() : -1; }

void HostEntity::SyncAccounting(TimeNs now) const {
  VSCHED_CHECK(now >= acct_last_);
  TimeNs delta = now - acct_last_;
  if (delta == 0) {
    return;
  }
  if (running_) {
    acct_ran_ += delta;
  } else if (wants_to_run_ && sched_ != nullptr) {
    acct_steal_ += delta;
  } else {
    acct_halted_ += delta;
  }
  acct_last_ = now;
}

TimeNs HostEntity::ran_ns(TimeNs now) const {
  SyncAccounting(now);
  return acct_ran_;
}

TimeNs HostEntity::steal_ns(TimeNs now) const {
  SyncAccounting(now);
  return acct_steal_;
}

TimeNs HostEntity::halted_ns(TimeNs now) const {
  SyncAccounting(now);
  return acct_halted_;
}

}  // namespace vsched
