#include "src/host/cpu_sched.h"

#include <algorithm>
#include <cmath>

#include "src/base/audit.h"
#include "src/base/check.h"
#include "src/base/perf_counters.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

// Chooses the entity to run next: RT tier first, then minimum vruntime.
// Stable on ties (first in queue order) for determinism.
HostEntity* BestOf(const std::vector<HostEntity*>& queue) {
  HostEntity* best = nullptr;
  for (HostEntity* e : queue) {
    if (best == nullptr) {
      best = e;
      continue;
    }
    if (e->rt() != best->rt()) {
      if (e->rt()) {
        best = e;
      }
      continue;
    }
    if (e->vruntime() < best->vruntime()) {
      best = e;
    }
  }
  return best;
}

}  // namespace

CpuSched::CpuSched(Simulation* sim, HostMachine* machine, HwThreadId tid,
                   std::shared_ptr<const HostSchedParams> params)
    : sim_(sim), machine_(machine), tid_(tid), params_(std::move(params)), rng_(sim->ForkRng()) {
  slice_timer_ = sim_->CreateTimer([this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnSliceEnd();
  });
  throttle_timer_ = sim_->CreateTimer([this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    ThrottleCurrent(sim_->now());
  });
}

CpuSched::~CpuSched() {
  sim_->DestroyTimer(throttle_timer_);
  sim_->DestroyTimer(slice_timer_);
}

size_t CpuSched::runnable_count() const { return queue_.size() + (current_ != nullptr ? 1 : 0); }

TimeNs CpuSched::now() const { return sim_->now(); }

void CpuSched::RefreshMinVruntime() {
  // CFS keeps min_vruntime as a monotonic floor tracking the minimum of the
  // running entity and the queue, so new arrivals are placed near the pack.
  double floor_v = static_cast<double>(kTimeInfinity);
  if (current_ != nullptr) {
    floor_v = current_->vruntime_;
  }
  for (const HostEntity* e : queue_) {
    floor_v = std::min(floor_v, e->vruntime_);
  }
  if (floor_v < static_cast<double>(kTimeInfinity)) {
    min_vruntime_ = std::max(min_vruntime_, floor_v);
  }
}

double CpuSched::QueueMinVruntime() const { return min_vruntime_; }

void CpuSched::Attach(HostEntity* e) {
  VSCHED_CHECK_MSG(e->sched_ == nullptr, "entity already attached");
  TimeNs now = sim_->now();
  e->SyncAccounting(now);
  e->sched_ = this;
  UpdateCurrentRuntime(now);
  RefreshMinVruntime();
  e->vruntime_ = min_vruntime_;
  e->queued_ = false;
  entities_.push_back(e);
  if (e->has_bandwidth()) {
    e->bw_used_ = 0;
    e->throttled_ = false;
    // Stagger the refill grid per hardware thread so co-scheduled vCPUs do
    // not throttle in lock-step (real hosts interleave slices).
    TimeNs offset = (static_cast<TimeNs>(tid_) * 2654435761LL) % e->bw_period_;
    e->bw_refill_origin_ = now + (e->bw_period_ - offset);
    e->bw_refill_timer_ =
        sim_->CreateTimer([this, e, alive = std::weak_ptr<const bool>(alive_)] {
          if (alive.expired()) {
            return;
          }
          RefillBandwidth(e);
        });
    sim_->ArmTimerAt(e->bw_refill_timer_, e->bw_refill_origin_);
    e->bw_refill_armed_ = true;
  }
  if (e->wants_to_run_) {
    EntityWoke(e);
  }
  if (audit::Enabled()) {
    AuditVerify();
  }
}

void CpuSched::Detach(HostEntity* e) {
  VSCHED_CHECK(e->sched_ == this);
  TimeNs now = sim_->now();
  if (e->bw_refill_timer_ != kInvalidTimerId) {
    sim_->DestroyTimer(e->bw_refill_timer_);
    e->bw_refill_timer_ = kInvalidTimerId;
    e->bw_refill_armed_ = false;
  }
  if (current_ == e) {
    // PutCurrent cancels the slice and throttle timers (a throttle deadline
    // only ever exists for the running entity).
    PutCurrent(now, /*requeue=*/false);
    e->SyncAccounting(now);
    e->sched_ = nullptr;
    PickNext(now);
  } else {
    auto it = std::find(queue_.begin(), queue_.end(), e);
    if (it != queue_.end()) {
      queue_.erase(it);
    }
    e->queued_ = false;
    e->SyncAccounting(now);
    e->sched_ = nullptr;
  }
  e->throttled_ = false;
  entities_.erase(std::find(entities_.begin(), entities_.end(), e));
  if (audit::Enabled()) {
    AuditVerify();
  }
}

void CpuSched::EntityWoke(HostEntity* e) {
  VSCHED_CHECK(e->sched_ == this);
  TimeNs now = sim_->now();
  e->SyncAccounting(now);
  if (e->throttled_ || e->paused_ || e->queued_ || current_ == e) {
    return;  // Throttled entities enqueue at the next refill; paused ones
             // re-enter via SetPaused(false) at migration-downtime end.
  }
  UpdateCurrentRuntime(now);
  RefreshMinVruntime();
  // Wakeup credit: do not let a long sleeper starve the queue, but grant it a
  // small scheduling advantage (CFS's sched-latency placement rule).
  double credit = static_cast<double>(params_->min_granularity);
  e->vruntime_ = std::max(e->vruntime_, min_vruntime_ - credit);
  e->queued_ = true;
  queue_.push_back(e);

  if (current_ == nullptr) {
    PickNext(now);
    return;
  }
  bool preempt = false;
  if (e->rt() && !current_->rt()) {
    preempt = true;
  } else if (e->rt() == current_->rt()) {
    // CFS wakeup preemption: the waker must lead by more than the wakeup
    // granularity in vruntime. Raising the granularity makes woken vCPUs
    // wait for the current slice — higher vCPU latency at equal capacity.
    if (e->vruntime_ + static_cast<double>(params_->wakeup_granularity) < current_->vruntime_) {
      preempt = true;
    }
  }
  if (preempt) {
    PutCurrent(now, /*requeue=*/true);
    PickNext(now);
  }
  if (audit::Enabled()) {
    AuditVerify();
  }
}

void CpuSched::EntitySlept(HostEntity* e) {
  VSCHED_CHECK(e->sched_ == this);
  TimeNs now = sim_->now();
  if (current_ == e) {
    PutCurrent(now, /*requeue=*/false);
    PickNext(now);
    return;
  }
  e->SyncAccounting(now);
  auto it = std::find(queue_.begin(), queue_.end(), e);
  if (it != queue_.end()) {
    queue_.erase(it);
    e->queued_ = false;
  }
  if (audit::Enabled()) {
    AuditVerify();
  }
}

void CpuSched::SetBandwidthLive(HostEntity* e, TimeNs quota, TimeNs period) {
  VSCHED_CHECK(e->sched_ == this);
  VSCHED_CHECK((quota > 0 && period > 0) || (quota == 0 && period == 0));
  TimeNs now = sim_->now();
  // Fold in-flight runtime first so the old cap's usage is fully accounted
  // before the machinery is torn down.
  UpdateCurrentRuntime(now);
  if (e->bw_refill_timer_ != kInvalidTimerId) {
    sim_->DestroyTimer(e->bw_refill_timer_);
    e->bw_refill_timer_ = kInvalidTimerId;
    e->bw_refill_armed_ = false;
  }
  if (e == current_) {
    sim_->CancelTimer(throttle_timer_);
  }
  const bool was_throttled = e->throttled_;
  e->throttled_ = false;
  e->bw_quota_ = quota;
  e->bw_period_ = period;
  e->bw_used_ = 0;
  if (e->has_bandwidth()) {
    // Same staggered refill grid as Attach, restarted at the change point.
    TimeNs offset = (static_cast<TimeNs>(tid_) * 2654435761LL) % e->bw_period_;
    e->bw_refill_origin_ = now + (e->bw_period_ - offset);
    e->bw_refill_timer_ =
        sim_->CreateTimer([this, e, alive = std::weak_ptr<const bool>(alive_)] {
          if (alive.expired()) {
            return;
          }
          RefillBandwidth(e);
        });
    sim_->ArmTimerAt(e->bw_refill_timer_, e->bw_refill_origin_);
    e->bw_refill_armed_ = true;
    if (e == current_) {
      sim_->ArmTimerAfter(throttle_timer_, e->bw_quota_);
    }
  }
  if (was_throttled && e->wants_to_run_) {
    EntityWoke(e);
  }
  if (audit::Enabled()) {
    AuditVerify();
  }
}

void CpuSched::UpdateCurrentRuntime(TimeNs now) {
  if (current_ == nullptr) {
    return;
  }
  TimeNs delta = now - last_runtime_sync_;
  if (delta <= 0) {
    return;
  }
  last_runtime_sync_ = now;
  // vsched-lint: allow(raw-double-accum) — increments are exact small-int multiples; audited against drift
  current_->vruntime_ += static_cast<double>(delta) * (kCapacityScale / current_->weight());
  if (current_->has_bandwidth()) {
    current_->bw_used_ += delta;
  }
}

void CpuSched::PutCurrent(TimeNs now, bool requeue) {
  VSCHED_CHECK(current_ != nullptr);
  HostEntity* e = current_;
  UpdateCurrentRuntime(now);
  sim_->CancelTimer(slice_timer_);
  sim_->CancelTimer(throttle_timer_);
  e->SyncAccounting(now);
  e->running_ = false;
  current_ = nullptr;
  e->ScheduledOut(now);
  if (requeue && e->wants_to_run_ && !e->throttled_ && !e->paused_) {
    e->queued_ = true;
    queue_.push_back(e);
  }
}

void CpuSched::PickNext(TimeNs now) {
  VSCHED_CHECK(current_ == nullptr);
  HostEntity* next = BestOf(queue_);
  if (next == nullptr) {
    machine_->OnBusyChanged(tid_);
    return;
  }
  queue_.erase(std::find(queue_.begin(), queue_.end(), next));
  next->queued_ = false;
  next->SyncAccounting(now);
  next->running_ = true;
  current_ = next;
  current_since_ = now;
  last_runtime_sync_ = now;
  min_vruntime_ = std::max(min_vruntime_, next->vruntime_);
  ArmSliceTimer(now);
  if (next->has_bandwidth()) {
    if (!next->bw_refill_armed_) {
      // Tickless: the refill went dormant while this entity was off-CPU (every
      // skipped firing was a no-op: quota full, not throttled). Re-arm on the
      // original grid before any quota can be consumed — an unarmed refill
      // with a running entity would throttle forever.
      TimeNs when = sim_->NextGridPoint(next->bw_refill_origin_, next->bw_period_,
                                        next->bw_refill_timer_);
      PerfCounters::Current()->ticks_elided +=
          static_cast<uint64_t>((when - next->bw_refill_origin_) / next->bw_period_ - 1);
      next->bw_refill_origin_ = when;
      sim_->ArmTimerAt(next->bw_refill_timer_, when);
      next->bw_refill_armed_ = true;
    }
    TimeNs remaining = next->bw_quota_ - next->bw_used_;
    if (remaining <= 0) {
      // Quota already exhausted (can happen if refill raced); throttle now.
      ThrottleCurrent(now);
      return;
    }
    sim_->ArmTimerAfter(throttle_timer_, remaining);
  }
  machine_->OnBusyChanged(tid_);
  next->ScheduledIn(now);
}

void CpuSched::ArmSliceTimer(TimeNs now) {
  (void)now;
  // Real slice lengths vary slightly (timer coalescing, softirqs); the
  // ±5% jitter also prevents deterministic phase-locking between threads.
  TimeNs slice = static_cast<TimeNs>(static_cast<double>(params_->min_granularity) *
                                     rng_.Uniform(0.95, 1.05));
  sim_->ArmTimerAfter(slice_timer_, slice);  // re-arm in place, no closure churn
}

void CpuSched::OnSliceEnd() {
  TimeNs now = sim_->now();
  if (current_ == nullptr) {
    return;
  }
  UpdateCurrentRuntime(now);
  HostEntity* best = BestOf(queue_);
  bool switch_away = false;
  if (best != nullptr) {
    if (best->rt() && !current_->rt()) {
      switch_away = true;
    } else if (best->rt() == current_->rt() && best->vruntime_ < current_->vruntime_) {
      switch_away = true;
    }
  }
  if (!switch_away) {
    ArmSliceTimer(now);
    return;
  }
  PutCurrent(now, /*requeue=*/true);
  PickNext(now);
  if (audit::Enabled()) {
    AuditVerify();
  }
}

void CpuSched::ThrottleCurrent(TimeNs now) {
  VSCHED_CHECK(current_ != nullptr);
  HostEntity* e = current_;
  UpdateCurrentRuntime(now);
  e->throttled_ = true;
  PutCurrent(now, /*requeue=*/false);
  PickNext(now);
  if (audit::Enabled()) {
    AuditVerify();
  }
}

void CpuSched::RefillBandwidth(HostEntity* e) {
  VSCHED_CHECK(e->sched_ == this);
  TimeNs now = sim_->now();
  e->bw_refill_origin_ = now;  // Last firing pins the grid for resume/elision.
  if (e == current_) {
    // Re-arm first so the period grid stays fixed.
    sim_->ArmTimerAfter(e->bw_refill_timer_, e->bw_period_);
    UpdateCurrentRuntime(now);
    e->bw_used_ = 0;
    sim_->ArmTimerAfter(throttle_timer_, e->bw_quota_);
    return;
  }
  e->bw_used_ = 0;
  if (e->throttled_) {
    // Unthrottle may make the entity current again; re-arm before it can run.
    sim_->ArmTimerAfter(e->bw_refill_timer_, e->bw_period_);
    e->throttled_ = false;
    if (e->wants_to_run_) {
      EntityWoke(e);
    }
  } else if (params_->tickless) {
    // Off-CPU, unthrottled, quota now full: every further firing before the
    // entity next runs is a no-op. Stop the timer; PickNext resumes it on
    // this grid (NOHZ for the host bandwidth machinery).
    e->bw_refill_armed_ = false;
  } else {
    sim_->ArmTimerAfter(e->bw_refill_timer_, e->bw_period_);
  }
  if (audit::Enabled()) {
    AuditVerify();
  }
}

void CpuSched::NotifyRateChanged(TimeNs now) {
  if (current_ != nullptr) {
    current_->RateChanged(now);
  }
}

void CpuSched::AuditVerify() const {
  // Current entity: running, dequeued, attached here.
  if (current_ != nullptr) {
    VSCHED_AUDIT_CHECK(current_->sched_ == this, "cpu_sched: current entity attached elsewhere");
    VSCHED_AUDIT_CHECK(current_->running_, "cpu_sched: current entity not marked running");
    VSCHED_AUDIT_CHECK(!current_->queued_, "cpu_sched: current entity still marked queued");
    VSCHED_AUDIT_CHECK(!current_->paused_, "cpu_sched: paused entity is running");
  }
  // Runnable queue: flags consistent, no duplicates, current never queued.
  for (size_t i = 0; i < queue_.size(); ++i) {
    const HostEntity* e = queue_[i];
    VSCHED_AUDIT_CHECK(e != current_, "cpu_sched: current entity also sits in the queue");
    VSCHED_AUDIT_CHECK(e->sched_ == this, "cpu_sched: queued entity attached elsewhere");
    VSCHED_AUDIT_CHECK(e->queued_, "cpu_sched: queued entity not marked queued");
    VSCHED_AUDIT_CHECK(!e->running_, "cpu_sched: queued entity marked running");
    VSCHED_AUDIT_CHECK(!e->throttled_, "cpu_sched: throttled entity left in the queue");
    VSCHED_AUDIT_CHECK(!e->paused_, "cpu_sched: paused entity left in the queue");
    for (size_t j = i + 1; j < queue_.size(); ++j) {
      VSCHED_AUDIT_CHECK(queue_[j] != e, "cpu_sched: entity queued twice");
    }
  }
  // Attached set: back-pointers, finite vruntime, bandwidth accounting never
  // negative (the invariant throttling correctness rests on).
  for (const HostEntity* e : entities_) {
    VSCHED_AUDIT_CHECK(e->sched_ == this, "cpu_sched: attached entity points elsewhere");
    VSCHED_AUDIT_CHECK(std::isfinite(e->vruntime_), "cpu_sched: entity vruntime not finite");
    if (e->has_bandwidth()) {
      VSCHED_AUDIT_CHECK(e->bw_used_ >= 0, "cpu_sched: bandwidth usage went negative");
      VSCHED_AUDIT_CHECK(e->bw_quota_ > 0, "cpu_sched: bandwidth quota not positive");
      VSCHED_AUDIT_CHECK(e->bw_refill_timer_ != kInvalidTimerId,
                         "cpu_sched: bandwidth entity has no refill timer");
      VSCHED_AUDIT_CHECK(e->bw_refill_armed_ == sim_->TimerArmed(e->bw_refill_timer_),
                         "cpu_sched: refill dormancy flag out of sync with its timer");
      VSCHED_AUDIT_CHECK(!e->throttled_ || e->bw_refill_armed_,
                         "cpu_sched: throttled entity with a dormant refill timer");
    } else {
      VSCHED_AUDIT_CHECK(!e->throttled_, "cpu_sched: throttled entity has no bandwidth cap");
    }
  }
  VSCHED_AUDIT_CHECK(std::isfinite(min_vruntime_), "cpu_sched: min_vruntime not finite");
}

}  // namespace vsched
