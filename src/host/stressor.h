// Host-side interference tasks.
//
// A Stressor occupies a hardware thread as a host scheduling entity — either
// continuously (a co-tenant VM's CPU-bound vCPU, à la the Sysbench stressor
// VMs in §2.3) or on a duty cycle (intermittent/transient interference in
// §5.8). An RT stressor models the host high-priority task that turns a vCPU
// into a straggler (§2.3, Figure 4 left).
#ifndef SRC_HOST_STRESSOR_H_
#define SRC_HOST_STRESSOR_H_

#include <memory>
#include <string>

#include "src/base/time.h"
#include "src/host/host_entity.h"
#include "src/host/topology.h"
#include "src/sim/event_queue.h"

namespace vsched {

class HostMachine;
class Simulation;

class Stressor : public HostEntity {
 public:
  // Always-runnable stressor.
  Stressor(Simulation* sim, std::string name, double weight = 1024.0, bool rt = false);
  ~Stressor() override;

  // Starts competing on hardware thread `tid` until Stop().
  void Start(HostMachine* machine, HwThreadId tid);

  // Duty-cycled variant: runnable for `on`, idle for `off`, repeating. The
  // phase starts with the ON interval at the time of the call.
  void StartDutyCycle(HostMachine* machine, HwThreadId tid, TimeNs on, TimeNs off);

  // Detaches from the host; the stressor can be Start()ed again later.
  void Stop();

 private:
  void ArmToggle(TimeNs delay, bool next_on);

  Simulation* sim_;
  HostMachine* machine_ = nullptr;
  TimeNs on_ = 0;
  TimeNs off_ = 0;
  EventId toggle_event_;

  // Liveness token for posted event closures (the PR-6 pattern, enforced by
  // vsched-lint's event-lifetime rule). Must be the last member so it
  // expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_HOST_STRESSOR_H_
