// The host-side representation of a vCPU: a KVM vCPU thread.
//
// The guest kernel binds a client to receive activity transitions. A vCPU
// thread wants to run exactly when the guest has runnable work on that vCPU
// (otherwise the guest HLTs and the thread sleeps); whether it actually runs
// is the host scheduler's decision — the gap is what the guest observes as
// steal time and what vact measures as vCPU latency.
#ifndef SRC_HOST_VCPU_THREAD_H_
#define SRC_HOST_VCPU_THREAD_H_

#include <string>

#include "src/base/time.h"
#include "src/host/host_entity.h"

namespace vsched {

class VcpuHostClient {
 public:
  virtual ~VcpuHostClient() = default;
  // The vCPU started executing on its hardware thread.
  virtual void OnVcpuScheduledIn(TimeNs now) = 0;
  // The vCPU was descheduled (preempted, throttled, or halted).
  virtual void OnVcpuScheduledOut(TimeNs now) = 0;
  // The hardware thread's effective speed changed while the vCPU runs.
  virtual void OnVcpuRateChanged(TimeNs now) = 0;
};

class VcpuThread : public HostEntity {
 public:
  explicit VcpuThread(std::string name, double weight = 1024.0)
      : HostEntity(std::move(name), weight) {}

  void BindClient(VcpuHostClient* client) { client_ = client; }

  // Guest-driven demand: the guest has (no) runnable work.
  void GuestWake() { SetWantsToRun(true); }
  void GuestHalt() { SetWantsToRun(false); }

  // True while the vCPU is executing on its hardware thread.
  bool active() const { return running(); }

 protected:
  void ScheduledIn(TimeNs now) override {
    if (client_ != nullptr) {
      client_->OnVcpuScheduledIn(now);
    }
  }
  void ScheduledOut(TimeNs now) override {
    if (client_ != nullptr) {
      client_->OnVcpuScheduledOut(now);
    }
  }
  void RateChanged(TimeNs now) override {
    if (client_ != nullptr) {
      client_->OnVcpuRateChanged(now);
    }
  }

 private:
  VcpuHostClient* client_ = nullptr;
};

}  // namespace vsched

#endif  // SRC_HOST_VCPU_THREAD_H_
