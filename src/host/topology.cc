#include "src/host/topology.h"

#include "src/base/check.h"

namespace vsched {

HostTopology::HostTopology(const TopologySpec& spec) : spec_(spec) {
  VSCHED_CHECK(spec.sockets >= 1);
  VSCHED_CHECK(spec.cores_per_socket >= 1);
  VSCHED_CHECK(spec.threads_per_core == 1 || spec.threads_per_core == 2);
  num_cores_ = spec.sockets * spec.cores_per_socket;
  num_threads_ = num_cores_ * spec.threads_per_core;
}

int HostTopology::CoreOf(HwThreadId t) const {
  VSCHED_CHECK(t >= 0 && t < num_threads_);
  return t / spec_.threads_per_core;
}

int HostTopology::SocketOf(HwThreadId t) const { return CoreOf(t) / spec_.cores_per_socket; }

HwThreadId HostTopology::SiblingOf(HwThreadId t) const {
  if (spec_.threads_per_core == 1) {
    return -1;
  }
  VSCHED_CHECK(t >= 0 && t < num_threads_);
  return (t % 2 == 0) ? t + 1 : t - 1;
}

std::vector<HwThreadId> HostTopology::ThreadsOfCore(int core) const {
  VSCHED_CHECK(core >= 0 && core < num_cores_);
  std::vector<HwThreadId> out;
  for (int i = 0; i < spec_.threads_per_core; ++i) {
    out.push_back(core * spec_.threads_per_core + i);
  }
  return out;
}

HwDistance HostTopology::DistanceClass(HwThreadId a, HwThreadId b) const {
  if (a == b) {
    return HwDistance::kSame;
  }
  if (CoreOf(a) == CoreOf(b)) {
    return HwDistance::kSmtSibling;
  }
  if (SocketOf(a) == SocketOf(b)) {
    return HwDistance::kSameSocket;
  }
  return HwDistance::kCrossSocket;
}

double HostTopology::CacheLatencyNs(HwThreadId a, HwThreadId b) const {
  switch (DistanceClass(a, b)) {
    case HwDistance::kSame:
      // Same hardware thread: the line never moves, but stacked vCPUs also
      // never run concurrently; vtop observes timeouts, not this value.
      return spec_.lat_smt_ns;
    case HwDistance::kSmtSibling:
      return spec_.lat_smt_ns;
    case HwDistance::kSameSocket:
      return spec_.lat_socket_ns;
    case HwDistance::kCrossSocket:
      return spec_.lat_cross_socket_ns;
  }
  return spec_.lat_cross_socket_ns;
}

}  // namespace vsched
