// Per-hardware-thread host scheduler (the hypervisor's CPU scheduler).
//
// A simplified-but-faithful CFS: entities are picked by minimum vruntime
// (with an RT tier above the fair tier), run for min-granularity slices,
// receive wakeup credit bounded by the queue's min_vruntime, and honour
// CFS-bandwidth throttling. The knobs — min granularity, wakeup granularity,
// bandwidth quota/period, entity weights, RT stressors — are exactly the ones
// the paper uses on the host to shape vCPU capacity, latency, and activity
// (§5.1).
#ifndef SRC_HOST_CPU_SCHED_H_
#define SRC_HOST_CPU_SCHED_H_

#include <memory>
#include <vector>

#include "src/base/time.h"
#include "src/host/host_entity.h"
#include "src/host/topology.h"
#include "src/sim/rng.h"
#include "src/sim/timer_wheel.h"

namespace vsched {

class HostMachine;
class Simulation;

struct HostSchedParams {
  // Slice length for the fair tier (sched_min_granularity_ns analogue).
  TimeNs min_granularity = MsToNs(3);
  // A waking entity preempts the current one only if the current has already
  // run at least this long (sched_wakeup_granularity_ns analogue).
  TimeNs wakeup_granularity = MsToNs(1);
  // Tickless host: a bandwidth-refill timer whose firing would be a no-op
  // (entity off-CPU, unthrottled, quota already full) goes dormant instead of
  // re-arming; PickNext re-arms it on the refill grid before the entity runs
  // again. Observable state is identical either way (vsched_run_tickless).
  bool tickless = false;
};

class CpuSched {
 public:
  // Params are a shared immutable snapshot so a fleet of thousands of
  // hardware threads references one copy instead of holding one each.
  CpuSched(Simulation* sim, HostMachine* machine, HwThreadId tid,
           std::shared_ptr<const HostSchedParams> params);
  ~CpuSched();

  CpuSched(const CpuSched&) = delete;
  CpuSched& operator=(const CpuSched&) = delete;

  HwThreadId tid() const { return tid_; }
  TimeNs now() const;
  const HostSchedParams& params() const { return *params_; }
  // Replaces this thread's snapshot (other threads keep the old one).
  void set_params(HostSchedParams params) {
    params_ = std::make_shared<const HostSchedParams>(params);
  }

  // Entity lifecycle. An attached entity competes for this hardware thread
  // whenever it wants to run.
  void Attach(HostEntity* e);
  void Detach(HostEntity* e);

  // Demand transitions (invoked from HostEntity::SetWantsToRun).
  void EntityWoke(HostEntity* e);
  void EntitySlept(HostEntity* e);

  // Re-shapes an attached entity's CFS-bandwidth cap in place (bandwidth
  // jitter injection, runtime reconfiguration): unlike detach/re-attach, the
  // entity keeps its vruntime and queue position. quota == period == 0
  // removes the cap. The new period starts a fresh refill grid (same
  // per-thread stagger rule as Attach) with a full quota; an entity
  // throttled under the old cap becomes runnable immediately.
  void SetBandwidthLive(HostEntity* e, TimeNs quota, TimeNs period);

  HostEntity* current() const { return current_; }
  bool busy() const { return current_ != nullptr; }
  size_t attached_count() const { return entities_.size(); }
  size_t runnable_count() const;

  // Called by the machine when this thread's effective speed changed while
  // an entity is running (SMT sibling toggled or frequency changed).
  void NotifyRateChanged(TimeNs now);

  // Full structural self-check, reported through src/base/audit.h: queue and
  // current-entity bookkeeping flags agree, every attached entity points back
  // here, and bandwidth accounting never goes negative. Runs automatically
  // after every scheduling transition while auditing is enabled.
  void AuditVerify() const;

 private:
  friend class HostEntity;

  void PickNext(TimeNs now);
  void PutCurrent(TimeNs now, bool requeue);
  void OnSliceEnd();
  void UpdateCurrentRuntime(TimeNs now);
  void RefreshMinVruntime();
  void ArmSliceTimer(TimeNs now);
  void ThrottleCurrent(TimeNs now);
  void RefillBandwidth(HostEntity* e);
  double QueueMinVruntime() const;

  Simulation* sim_;
  HostMachine* machine_;
  HwThreadId tid_;
  std::shared_ptr<const HostSchedParams> params_;

  std::vector<HostEntity*> entities_;  // all attached
  std::vector<HostEntity*> queue_;     // runnable, excluding current
  HostEntity* current_ = nullptr;
  Rng rng_;
  TimeNs current_since_ = 0;   // when current_ started this stint
  TimeNs last_runtime_sync_ = 0;
  // Slice-end and bandwidth-throttle deadlines are wheel timers registered
  // once and re-armed in place: both are cancelled/re-armed on every
  // dispatch, which as heap events made them the queue's dominant churn
  // (fresh closure + O(log n) sift per context switch). The throttle timer
  // is shared: a throttle deadline only ever exists for current_.
  TimerId slice_timer_ = kInvalidTimerId;
  TimerId throttle_timer_ = kInvalidTimerId;
  double min_vruntime_ = 0;

  // Liveness token for event closures (slice/throttle/refill timers) posted
  // to the simulation: the closure no-ops once this scheduler is gone (the
  // PR-6 pattern, enforced by vsched-lint's event-lifetime rule). Must be
  // the last member so it expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_HOST_CPU_SCHED_H_
