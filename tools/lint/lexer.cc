#include "tools/lint/lexer.h"

#include <cctype>
#include <cstring>
#include <regex>
#include <sstream>

namespace vsched {
namespace lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }
bool IsAlnum(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0; }

// Multi-character operators the analyzer cares to see whole. Longest first.
const char* const kMultiPunct[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    ".*",  "++",  "--",
};

std::vector<std::string> ParseAllowText(const std::string& text) {
  static const std::regex kAllowRe(R"(vsched-lint:\s*allow\(([A-Za-z0-9_\-, ]+)\))");
  std::vector<std::string> rules;
  std::smatch m;
  std::string rest = text;
  while (std::regex_search(rest, m, kAllowRe)) {
    std::stringstream list(m[1].str());
    std::string item;
    while (std::getline(list, item, ',')) {
      size_t b = item.find_first_not_of(" \t");
      size_t e = item.find_last_not_of(" \t");
      if (b != std::string::npos) {
        rules.push_back(item.substr(b, e - b + 1));
      }
    }
    rest = m.suffix();
  }
  return rules;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : s_(src) {}

  LexResult Run() {
    while (i_ < s_.size()) {
      Step();
    }
    EnsureLine(line_);
    return std::move(out_);
  }

 private:
  char Cur() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  char At(size_t off) const { return i_ + off < s_.size() ? s_[i_ + off] : '\0'; }

  void EnsureLine(int line) {
    while (out_.scrubbed.size() < static_cast<size_t>(line)) {
      out_.scrubbed.emplace_back();
      out_.allows.emplace_back();
    }
  }

  void Emit(char c) {
    EnsureLine(line_);
    out_.scrubbed[static_cast<size_t>(line_) - 1].push_back(c);
  }
  void Emit(const std::string& text) {
    EnsureLine(line_);
    out_.scrubbed[static_cast<size_t>(line_) - 1] += text;
  }

  void Newline() {
    EnsureLine(line_);
    ++line_;
  }

  // Consumes a backslash-newline splice if one starts at i_. Returns true if
  // consumed. Inside comments/literals the caller decides what a splice means.
  bool ConsumeSplice() {
    if (Cur() != '\\') {
      return false;
    }
    if (At(1) == '\n') {
      i_ += 2;
      Newline();
      return true;
    }
    if (At(1) == '\r' && At(2) == '\n') {
      i_ += 3;
      Newline();
      return true;
    }
    return false;
  }

  void AttachAllows(const std::string& comment, int first_line, int last_line) {
    std::vector<std::string> rules = ParseAllowText(comment);
    if (rules.empty()) {
      return;
    }
    EnsureLine(last_line);
    for (int l = first_line; l <= last_line; ++l) {
      auto& dst = out_.allows[static_cast<size_t>(l) - 1];
      dst.insert(dst.end(), rules.begin(), rules.end());
    }
  }

  void LexLineComment() {
    int first = line_;
    std::string text;
    i_ += 2;  // "//"
    while (i_ < s_.size()) {
      if (ConsumeSplice()) {
        // The splice extends the comment onto the next physical line; that
        // whole line is dead text.
        text.push_back(' ');
        continue;
      }
      if (Cur() == '\n') {
        break;  // leave the newline for the main loop
      }
      text.push_back(Cur());
      ++i_;
    }
    AttachAllows(text, first, line_);
  }

  void LexBlockComment() {
    int first = line_;
    std::string text;
    i_ += 2;  // "/*"
    while (i_ < s_.size()) {
      if (Cur() == '*' && At(1) == '/') {
        i_ += 2;
        break;
      }
      if (Cur() == '\n') {
        ++i_;
        Newline();
        text.push_back(' ');
        continue;
      }
      text.push_back(Cur());
      ++i_;
    }
    AttachAllows(text, first, line_);
  }

  // `R"delim( ... )delim"` — i_ sits on the opening quote.
  void LexRawString(int tok_line) {
    ++i_;  // '"'
    std::string delim;
    while (i_ < s_.size() && Cur() != '(' && delim.size() < 18) {
      delim.push_back(Cur());
      ++i_;
    }
    ++i_;  // '('
    const std::string close = ")" + delim + "\"";
    while (i_ < s_.size()) {
      if (Cur() == '\n') {
        ++i_;
        Newline();
        continue;
      }
      if (Cur() == close[0] && s_.compare(i_, close.size(), close) == 0) {
        i_ += close.size();
        break;
      }
      ++i_;
    }
    out_.tokens.push_back({Tok::kString, "\"\"", tok_line});
    // The contents (possibly multi-line) never reach the scrubbed view.
    Emit("\"\"");
  }

  // Ordinary string or char literal — i_ sits on the opening quote.
  void LexQuoted(char quote, int tok_line) {
    ++i_;
    while (i_ < s_.size()) {
      if (Cur() == '\\') {
        if (At(1) == '\n') {
          i_ += 2;
          Newline();
          continue;
        }
        if (At(1) == '\r' && At(2) == '\n') {
          i_ += 3;
          Newline();
          continue;
        }
        i_ += 2;  // escape: skip the escaped char
        continue;
      }
      if (Cur() == quote) {
        ++i_;
        break;
      }
      if (Cur() == '\n') {
        break;  // unterminated literal: recover at end of line
      }
      ++i_;
    }
    std::string text = quote == '"' ? "\"\"" : "''";
    out_.tokens.push_back({quote == '"' ? Tok::kString : Tok::kChar, text, tok_line});
    Emit(text);
  }

  // pp-number: digit separators (`1'000'000`) and exponent signs stay inside
  // one token, so a separator can never open a bogus char literal.
  void LexNumber() {
    int tok_line = line_;
    std::string text;
    while (i_ < s_.size()) {
      char c = Cur();
      if (IsAlnum(c) || c == '_' || c == '.') {
        text.push_back(c);
        ++i_;
        continue;
      }
      if (c == '\'' && IsAlnum(At(1)) && !text.empty()) {
        text.push_back(c);
        ++i_;
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty() &&
          (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
           text.back() == 'P')) {
        text.push_back(c);
        ++i_;
        continue;
      }
      break;
    }
    out_.tokens.push_back({Tok::kNumber, text, tok_line});
    Emit(text);
  }

  void LexIdentOrPrefixedLiteral() {
    int tok_line = line_;
    std::string text;
    while (i_ < s_.size() && IsIdentChar(Cur())) {
      text.push_back(Cur());
      ++i_;
    }
    // String/char-literal encoding prefixes glue onto the literal.
    if (Cur() == '"') {
      if (text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR") {
        Emit(text);
        LexRawString(tok_line);
        return;
      }
      if (text == "u8" || text == "u" || text == "U" || text == "L") {
        Emit(text);
        LexQuoted('"', tok_line);
        return;
      }
    }
    if (Cur() == '\'' && (text == "u8" || text == "u" || text == "U" || text == "L")) {
      Emit(text);
      LexQuoted('\'', tok_line);
      return;
    }
    out_.tokens.push_back({Tok::kIdent, text, tok_line});
    Emit(text);
  }

  void LexPunct() {
    for (const char* op : kMultiPunct) {
      size_t n = std::strlen(op);
      if (s_.compare(i_, n, op) == 0) {
        out_.tokens.push_back({Tok::kPunct, op, line_});
        Emit(op);
        i_ += n;
        return;
      }
    }
    out_.tokens.push_back({Tok::kPunct, std::string(1, Cur()), line_});
    Emit(Cur());
    ++i_;
  }

  void Step() {
    char c = Cur();
    if (c == '\n') {
      ++i_;
      Newline();
      return;
    }
    if (c == '\r') {
      ++i_;
      return;
    }
    if (ConsumeSplice()) {
      return;  // spliced code line: simply continues on the next line
    }
    if (c == '/' && At(1) == '/') {
      LexLineComment();
      return;
    }
    if (c == '/' && At(1) == '*') {
      LexBlockComment();
      return;
    }
    if (c == '"') {
      LexQuoted('"', line_);
      return;
    }
    if (c == '\'') {
      LexQuoted('\'', line_);
      return;
    }
    if (IsDigit(c) || (c == '.' && IsDigit(At(1)))) {
      LexNumber();
      return;
    }
    if (IsIdentStart(c)) {
      LexIdentOrPrefixedLiteral();
      return;
    }
    if (c == ' ' || c == '\t' || c == '\f' || c == '\v') {
      Emit(c);
      ++i_;
      return;
    }
    LexPunct();
  }

  const std::string& s_;
  size_t i_ = 0;
  int line_ = 1;
  LexResult out_;
};

}  // namespace

LexResult Lex(const std::string& content) { return Lexer(content).Run(); }

}  // namespace lint
}  // namespace vsched
