#include "tools/lint/analyzer.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace vsched {
namespace lint {

namespace {

bool IsSrcPath(const std::string& path) { return path.find("src/") != std::string::npos; }
bool IsClusterPath(const std::string& path) {
  return path.find("src/cluster/") != std::string::npos;
}
bool IsPlacementFile(const std::string& path) {
  return path.find("src/cluster/placement") != std::string::npos;
}

// Posting interfaces whose callable argument outlives the caller's stack
// frame. `qualified` sinks only count behind `.` / `->` / `::` (the bare
// names are too generic to match globally). `factory` sinks take a lambda
// that is invoked synchronously and *returns* the closure that gets posted
// (EventQueue::PostBatch) — the capture rules apply to the returned lambda,
// not the factory itself.
struct SinkSpec {
  const char* name;
  bool qualified;
  bool factory = false;
};
const SinkSpec kSinks[] = {
    {"After", false},       {"At", true},          {"ScheduleAfter", false},
    {"ScheduleAt", false},  {"CreateTimer", false}, {"Every", true},
    {"RunOnVcpu", false},   {"AddTickHook", false}, {"ArmArrival", false},
    {"PostBatch", false, /*factory=*/true},
};

// The sharded fleet engine's barrier mailbox (src/sim/shard_mailbox.h): a
// closure handed to `ShardMailbox::Post` is applied at a *later* window
// boundary, possibly after the cell it refers to ran on a worker thread.
// The shard-crossing rule makes those closures carry ids only. Qualified so
// an unrelated free function named Post can't match.
const SinkSpec kMailboxSinks[] = {{"Post", true}};

const std::set<std::string>& StatementKeywords() {
  static const std::set<std::string> kw = {
      "return",   "if",      "else",   "while",  "do",       "switch",  "case",
      "default",  "break",   "continue", "goto", "using",    "typedef", "delete",
      "new",      "throw",   "public", "private", "protected", "template",
      "namespace", "friend", "extern", "static_assert", "co_return", "co_await",
  };
  return kw;
}

bool TypeHasIdent(const std::string& type, const std::string& ident) {
  // `type` is a space-joined token list, so exact-token search is a substring
  // search with space/edge guards.
  size_t pos = 0;
  while ((pos = type.find(ident, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || type[pos - 1] == ' ';
    size_t end = pos + ident.size();
    bool right_ok = end == type.size() || type[end] == ' ';
    if (left_ok && right_ok) {
      return true;
    }
    pos = end;
  }
  return false;
}

// Idents that name cluster slot objects; capturing a pointer/reference to one
// in a posted closure crosses the shard boundary.
const char* const kClusterSlotTypes[] = {"ClusterHost", "TenantVm", "HostMachine", "Vm",
                                         "Fleet"};

// Types whose pointers/references may not ride a mailbox message into a
// later barrier window: the cells themselves, their embedded simulations,
// and the slot objects that live inside a cell.
const char* const kCellStateTypes[] = {"FleetCell", "Simulation", "ClusterHost",
                                       "TenantVm", "HostMachine", "Vm"};

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kLambda, kBlock };
  Kind kind = kBlock;
  std::string cls;            // enclosing class name for kClass / member kFunction
  bool cluster_per_host = false;  // function scope taking a ClusterHost*/&
  bool cluster_per_cell = false;  // function scope taking a FleetCell*/&
  std::map<std::string, std::string> symbols;  // name -> declared type text
};

struct LambdaInfo {
  bool valid = false;
  int line = 0;
  std::vector<Capture> captures;
  std::map<std::string, std::string> params;  // lambda parameters
  size_t body_open = 0;                       // index of `{`
  size_t body_close = 0;                      // index of matching `}`
  size_t header_end = 0;                      // index just past `]`
};

class Analyzer {
 public:
  Analyzer(const std::string& path, const LexResult& lex)
      : path_(path),
        toks_(lex.tokens),
        src_scope_(IsSrcPath(path)),
        cluster_scope_(IsClusterPath(path)),
        placement_file_(IsPlacementFile(path)) {}

  std::vector<AnalysisFinding> Run() {
    scopes_.push_back(Scope{Scope::kNamespace, "", false, false, {}});
    Walk();
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const AnalysisFinding& a, const AnalysisFinding& b) {
                       return a.line < b.line;
                     });
    return std::move(findings_);
  }

 private:
  // ---- token helpers -------------------------------------------------------

  size_t Size() const { return toks_.size(); }
  const Token& T(size_t i) const { return toks_[i]; }
  bool IsP(size_t i, const char* s) const {
    return i < Size() && toks_[i].kind == Tok::kPunct && toks_[i].text == s;
  }
  bool IsI(size_t i, const char* s) const {
    return i < Size() && toks_[i].kind == Tok::kIdent && toks_[i].text == s;
  }

  // Matching close for the open bracket at `open` ('(', '[' or '{'), counting
  // only that bracket family. Returns Size() if unbalanced.
  size_t Match(size_t open) const {
    const std::string& o = toks_[open].text;
    const char* c = o == "(" ? ")" : o == "[" ? "]" : "}";
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      if (toks_[i].kind != Tok::kPunct) {
        continue;
      }
      if (toks_[i].text == o) {
        ++depth;
      } else if (toks_[i].text == c) {
        if (--depth == 0) {
          return i;
        }
      }
    }
    return Size();
  }

  // Splits [b, e) on commas at bracket depth 0. Returns (begin, end) spans.
  std::vector<std::pair<size_t, size_t>> SplitTopLevel(size_t b, size_t e) const {
    std::vector<std::pair<size_t, size_t>> spans;
    int depth = 0;
    size_t start = b;
    for (size_t i = b; i < e; ++i) {
      if (toks_[i].kind == Tok::kPunct) {
        const std::string& t = toks_[i].text;
        if (t == "(" || t == "[" || t == "{") {
          ++depth;
        } else if (t == ")" || t == "]" || t == "}") {
          --depth;
        } else if (t == "," && depth == 0) {
          spans.emplace_back(start, i);
          start = i + 1;
        }
      }
    }
    if (start < e) {
      spans.emplace_back(start, e);
    }
    return spans;
  }

  std::string Join(size_t b, size_t e) const {
    std::string out;
    for (size_t i = b; i < e && i < Size(); ++i) {
      if (!out.empty()) {
        out += ' ';
      }
      out += toks_[i].text;
    }
    return out;
  }

  // ---- declarations --------------------------------------------------------

  // Parses `[b, e)` as a simple declaration `type name [= init]` / parameter.
  // Returns false for anything that doesn't look like one (expressions,
  // control flow, calls). Deliberately conservative: an unparsed declaration
  // degrades a capture to "unknown" (treated safe), never a false positive.
  bool ParseDecl(size_t b, size_t e, std::string* name, std::string* type) const {
    while (b < e && (IsI(b, "for") || IsP(b, "("))) {
      ++b;  // tolerate `for (` prefixes from the statement splitter
    }
    if (b >= e || IsP(b, "#")) {
      return false;
    }
    if (toks_[b].kind == Tok::kIdent && StatementKeywords().count(toks_[b].text) != 0) {
      return false;
    }
    // Declarator part stops at a top-level `=` (or `{` for brace init).
    size_t de = e;
    int depth = 0;
    for (size_t i = b; i < e; ++i) {
      if (toks_[i].kind != Tok::kPunct) {
        continue;
      }
      const std::string& t = toks_[i].text;
      if (t == "(" || t == "[" || t == "<") {
        ++depth;
      } else if (t == ")" || t == "]" || t == ">") {
        --depth;
      } else if ((t == "=" || t == "{") && depth <= 0) {
        de = i;
        break;
      }
    }
    static const std::set<std::string> kDeclPunct = {"*", "&",  "&&", "::", "<",
                                                     ">", "[",  "]",  ",",  "...",
                                                     ">>"};
    size_t name_idx = e;
    for (size_t i = b; i < de; ++i) {
      if (toks_[i].kind == Tok::kPunct && kDeclPunct.count(toks_[i].text) == 0) {
        return false;
      }
      if (toks_[i].kind == Tok::kIdent) {
        name_idx = i;
      }
    }
    if (name_idx >= de || name_idx == b) {
      return false;  // no name, or a bare expression like `x = 1`
    }
    // After the name only array brackets may follow.
    for (size_t i = name_idx + 1; i < de; ++i) {
      if (!(IsP(i, "[") || IsP(i, "]") || toks_[i].kind == Tok::kNumber)) {
        return false;
      }
    }
    *name = toks_[name_idx].text;
    *type = Join(b, name_idx);
    // `auto p = &x;` / `auto p = owner.get();` — keep the initializer text
    // visible so classification can see what `auto` deduced from.
    if (TypeHasIdent(*type, "auto") && de < e) {
      *type += " " + Join(de, std::min(de + 12, e));
    }
    return true;
  }

  void DeclareInCurrent(size_t b, size_t e) {
    Scope& top = scopes_.back();
    if (top.kind == Scope::kNamespace || top.kind == Scope::kClass) {
      return;  // members/globals can't be captured by name
    }
    std::string name;
    std::string type;
    if (ParseDecl(b, e, &name, &type)) {
      top.symbols[name] = type;
    }
  }

  void DeclareParams(size_t lp, size_t rp, std::map<std::string, std::string>* out,
                     bool* cluster_per_host) const {
    for (const auto& span : SplitTopLevel(lp + 1, rp)) {
      std::string name;
      std::string type;
      if (ParseDecl(span.first, span.second, &name, &type)) {
        (*out)[name] = type;
        if (cluster_per_host != nullptr && TypeHasIdent(type, "ClusterHost")) {
          *cluster_per_host = true;
        }
      }
    }
  }

  std::string LookupType(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->symbols.find(name);
      if (f != it->symbols.end()) {
        return f->second;
      }
    }
    return "";
  }

  // ---- capture classification ----------------------------------------------

  std::string KindFromType(const std::string& type) const {
    if (type.empty()) {
      return "unknown";
    }
    if (TypeHasIdent(type, "weak_ptr")) {
      return "weak-token";
    }
    if (TypeHasIdent(type, "shared_ptr")) {
      return "owner";
    }
    if (type.find('*') != std::string::npos || type.find("= &") != std::string::npos) {
      return "raw-pointer";
    }
    return "value";
  }

  Capture ClassifyCapture(size_t b, size_t e) const {
    Capture cap;
    if (b >= e) {
      cap.kind = "unknown";
      return cap;
    }
    if (IsI(b, "this") && e == b + 1) {
      cap.name = "this";
      cap.kind = "this";
      return cap;
    }
    if (IsP(b, "*") && IsI(b + 1, "this")) {
      cap.name = "*this";
      cap.kind = "star-this";
      return cap;
    }
    if (IsP(b, "&") && e == b + 1) {
      cap.name = "&";
      cap.kind = "default-ref";
      return cap;
    }
    if (IsP(b, "=") && e == b + 1) {
      cap.name = "=";
      cap.kind = "default-copy";
      return cap;
    }
    if (IsP(b, "&") && b + 1 < e && toks_[b + 1].kind == Tok::kIdent) {
      cap.name = "&" + toks_[b + 1].text;
      cap.kind = "by-ref";
      cap.type = LookupType(toks_[b + 1].text);
      return cap;
    }
    if (toks_[b].kind == Tok::kIdent) {
      cap.name = toks_[b].text;
      if (e == b + 1) {  // plain by-value copy of a named symbol
        cap.type = LookupType(cap.name);
        cap.kind = KindFromType(cap.type);
        return cap;
      }
      if (IsP(b + 1, "=") || IsP(b + 1, "{")) {  // init-capture
        size_t ib = b + 2;
        std::string init = Join(ib, e);
        if (init.find("weak_ptr") != std::string::npos) {
          cap.kind = "weak-token";
          return cap;
        }
        if (IsP(ib, "&")) {
          cap.kind = "raw-pointer";
          cap.type = "&" + Join(ib + 1, e);
          return cap;
        }
        // `x = std::move(y)` or `x = y`: classify from the source symbol.
        std::string source;
        if (ib < e && toks_[ib].kind == Tok::kIdent && ib + 1 == e) {
          source = toks_[ib].text;
        } else if (IsI(ib, "std") && IsP(ib + 1, "::") && IsI(ib + 2, "move") &&
                   IsP(ib + 3, "(") && ib + 4 < e && toks_[ib + 4].kind == Tok::kIdent) {
          source = toks_[ib + 4].text;
        }
        if (!source.empty()) {
          cap.type = LookupType(source);
          cap.kind = KindFromType(cap.type);
          return cap;
        }
        cap.kind = KindFromType(init);
        cap.type = init;
        return cap;
      }
    }
    cap.name = Join(b, e);
    cap.kind = "unknown";
    return cap;
  }

  static bool KindIsUnsafe(const std::string& kind) {
    return kind == "this" || kind == "default-ref" || kind == "default-copy" ||
           kind == "by-ref" || kind == "raw-pointer";
  }

  // ---- lambda parsing ------------------------------------------------------

  bool LooksLikeLambdaIntro(size_t i) const {
    if (!IsP(i, "[") || IsP(i + 1, "[")) {
      return false;  // `[[attribute]]`
    }
    if (i == 0) {
      return true;
    }
    const Token& p = toks_[i - 1];
    if (p.kind == Tok::kPunct) {
      static const std::set<std::string> kBefore = {"(", ",", "{", "}", ";", "=",
                                                    "&&", "||", "?", ":", "<<", ">>"};
      return kBefore.count(p.text) != 0;
    }
    if (p.kind == Tok::kIdent) {
      // `return [..]` starts a lambda; `hosts_[i]` is a subscript.
      return StatementKeywords().count(p.text) != 0 && p.text != "this";
    }
    return false;  // after a number/literal: subscript or UDL-adjacent
  }

  LambdaInfo ParseLambda(size_t lb) const {
    LambdaInfo info;
    size_t rb = Match(lb);
    if (rb >= Size()) {
      return info;
    }
    info.line = toks_[lb].line;
    for (const auto& span : SplitTopLevel(lb + 1, rb)) {
      info.captures.push_back(ClassifyCapture(span.first, span.second));
    }
    size_t i = rb + 1;
    info.header_end = i;
    if (IsP(i, "(")) {
      size_t rp = Match(i);
      if (rp >= Size()) {
        return info;
      }
      DeclareParams(i, rp, &info.params, nullptr);
      i = rp + 1;
    }
    // Skip specifiers / trailing return type up to the body brace.
    int depth = 0;
    while (i < Size()) {
      if (toks_[i].kind == Tok::kPunct) {
        const std::string& t = toks_[i].text;
        if (t == "(" || t == "[" || t == "<") {
          ++depth;
        } else if (t == ")" || t == "]" || t == ">") {
          --depth;
          if (depth < 0) {
            return info;  // e.g. `[]` used as an empty default argument
          }
        } else if (t == "{" && depth == 0) {
          break;
        } else if (t == ";") {
          return info;
        }
      }
      ++i;
    }
    if (i >= Size()) {
      return info;
    }
    info.body_open = i;
    info.body_close = Match(i);
    if (info.body_close >= Size()) {
      return info;
    }
    info.valid = true;
    return info;
  }

  // True if the body calls `.expired(` or `.lock(` on any weak-token capture.
  bool BodyChecksToken(const LambdaInfo& info) const {
    for (const Capture& cap : info.captures) {
      if (cap.kind != "weak-token") {
        continue;
      }
      for (size_t i = info.body_open; i + 3 < info.body_close; ++i) {
        if (toks_[i].kind == Tok::kIdent && toks_[i].text == cap.name &&
            IsP(i + 1, ".") &&
            (IsI(i + 2, "expired") || IsI(i + 2, "lock")) && IsP(i + 3, "(")) {
          return true;
        }
      }
    }
    return false;
  }

  // ---- sinks ---------------------------------------------------------------

  // Returns the sink spec if the ident at `i` is a sink call head.
  template <size_t N>
  const SinkSpec* SinkInList(const SinkSpec (&list)[N], size_t i) const {
    if (toks_[i].kind != Tok::kIdent || !IsP(i + 1, "(")) {
      return nullptr;
    }
    for (const SinkSpec& s : list) {
      if (toks_[i].text != s.name) {
        continue;
      }
      bool has_qual = i > 0 && toks_[i - 1].kind == Tok::kPunct &&
                      (toks_[i - 1].text == "->" || toks_[i - 1].text == "." ||
                       toks_[i - 1].text == "::");
      if (s.qualified && !has_qual) {
        return nullptr;
      }
      return &s;
    }
    return nullptr;
  }

  const SinkSpec* SinkAt(size_t i) const { return SinkInList(kSinks, i); }
  const SinkSpec* MailboxSinkAt(size_t i) const { return SinkInList(kMailboxSinks, i); }

  std::string SinkDisplay(size_t i) const {
    if (i >= 2 && toks_[i - 1].kind == Tok::kPunct &&
        (toks_[i - 1].text == "->" || toks_[i - 1].text == "." ||
         toks_[i - 1].text == "::")) {
      return toks_[i - 2].text + toks_[i - 1].text + toks_[i].text;
    }
    return toks_[i].text;
  }

  std::string DescribeCaptures(const std::vector<Capture>& caps) const {
    std::string out;
    for (const Capture& c : caps) {
      if (!KindIsUnsafe(c.kind)) {
        continue;
      }
      if (!out.empty()) {
        out += ", ";
      }
      out += c.name;
      if (c.kind == "raw-pointer" && !c.type.empty()) {
        out += " (raw pointer: " + c.type + ")";
      } else if (c.kind == "by-ref") {
        out += " (by reference)";
      } else if (c.kind == "default-ref") {
        out = out.substr(0, out.size() - 1) + "[&] default (captures everything by reference)";
      } else if (c.kind == "default-copy") {
        out = out.substr(0, out.size() - 1) + "[=] default (implicitly captures this)";
      }
    }
    return out;
  }

  // For a factory sink (PostBatch), the outer lambda runs synchronously
  // inside the call; the closure that actually lives on the queue is the one
  // it `return`s. Re-target the check at the first returned lambda so the
  // `[this](size_t i) { return [this, i, alive = ...] {...}; }` idiom is
  // judged on the inner capture list.
  LambdaInfo ReturnedLambda(const LambdaInfo& outer) const {
    for (size_t i = outer.body_open + 1; i + 1 < outer.body_close; ++i) {
      if (IsI(i, "return") && IsP(i + 1, "[") && LooksLikeLambdaIntro(i + 1)) {
        LambdaInfo inner = ParseLambda(i + 1);
        if (inner.valid) {
          return inner;
        }
      }
    }
    return outer;
  }

  void CheckPostedLambda(size_t sink_idx, const LambdaInfo& posted, bool factory) {
    if (!posted.valid) {
      return;
    }
    const LambdaInfo info = factory ? ReturnedLambda(posted) : posted;
    bool has_unsafe = false;
    bool has_token = false;
    for (const Capture& c : info.captures) {
      has_unsafe = has_unsafe || KindIsUnsafe(c.kind);
      has_token = has_token || c.kind == "weak-token";
    }
    std::string sink = SinkDisplay(sink_idx);
    if (src_scope_ && has_unsafe && !(has_token && BodyChecksToken(info))) {
      AnalysisFinding f;
      f.line = info.line;
      f.rule = kEventLifetimeRule;
      f.sink = sink;
      f.captures = info.captures;
      f.message = "lambda posted to " + sink + " captures " +
                  DescribeCaptures(info.captures) +
                  " without a checked weak_ptr liveness token; the event can "
                  "outlive the owner (the PR-6 UAF class). Capture `alive = "
                  "std::weak_ptr<const bool>(alive_)` and return early when "
                  "expired, or justify with vsched-lint allow(event-lifetime)";
      findings_.push_back(std::move(f));
    }
    if (cluster_scope_) {
      for (const Capture& c : info.captures) {
        const char* slot = nullptr;
        for (const char* t : kClusterSlotTypes) {
          if (!c.type.empty() && TypeHasIdent(c.type, t)) {
            slot = t;
            break;
          }
        }
        if (slot != nullptr && (c.kind == "raw-pointer" || c.kind == "by-ref")) {
          AnalysisFinding f;
          f.line = info.line;
          f.rule = kShardIsolationRule;
          f.sink = sink;
          f.captures = info.captures;
          f.message = "event closure posted to " + sink + " captures `" + c.name +
                      "` (a " + std::string(slot) +
                      " slot pointer/reference) across the event boundary; "
                      "capture the slot id and re-resolve through the control "
                      "plane at delivery so shards stay isolated";
          findings_.push_back(std::move(f));
        }
      }
    }
  }

  // Shard-crossing discipline for barrier-mailbox messages: ids only. A
  // reference (or [&]) can never be safe across the window delay, and a raw
  // pointer to cell state aliases memory another worker thread owns by the
  // time the message is applied. `this` stays legal — the coordinator drains
  // the mailbox single-threaded and the mailbox dies with its owner, which
  // is also why this sink is *not* an event-lifetime sink.
  void CheckMailboxLambda(size_t sink_idx, const LambdaInfo& info) {
    if (!info.valid) {
      return;
    }
    std::string sink = SinkDisplay(sink_idx);
    for (const Capture& c : info.captures) {
      const char* cell_type = nullptr;
      for (const char* t : kCellStateTypes) {
        if (!c.type.empty() && TypeHasIdent(c.type, t)) {
          cell_type = t;
          break;
        }
      }
      bool is_ref = c.kind == "by-ref" || c.kind == "default-ref";
      bool is_cell_ptr = c.kind == "raw-pointer" && cell_type != nullptr;
      if (!is_ref && !is_cell_ptr) {
        continue;
      }
      AnalysisFinding f;
      f.line = info.line;
      f.rule = kShardCrossingRule;
      f.sink = sink;
      f.captures = info.captures;
      f.message = "mailbox message posted to " + sink + " captures `" + c.name + "` " +
                  (is_cell_ptr ? "(a " + std::string(cell_type) + " pointer)"
                               : std::string("by reference")) +
                  " across the barrier window; by delivery time the cell may have "
                  "run on a worker thread — capture ids and re-resolve cell-local "
                  "state at delivery (docs/PERF.md, \"Sharded fleet execution\")";
      findings_.push_back(std::move(f));
    }
  }

  // ---- scope classification ------------------------------------------------

  // Enclosing class name for a member definition head `Ret Cls::Fn(`:
  // the ident immediately before the last `::` before the param paren.
  std::string OutOfLineClass(size_t b, size_t lp) const {
    for (size_t i = lp; i > b + 1; --i) {
      if (IsP(i - 1, "::") && toks_[i - 2].kind == Tok::kIdent) {
        return toks_[i - 2].text;
      }
    }
    return "";
  }

  Scope ClassifyBrace(size_t b, size_t e) {
    Scope scope;
    // namespace?
    for (size_t i = b; i < e; ++i) {
      if (IsI(i, "namespace")) {
        scope.kind = Scope::kNamespace;
        return scope;
      }
    }
    // class / struct / enum?
    for (size_t i = b; i < e; ++i) {
      if (IsI(i, "class") || IsI(i, "struct") || IsI(i, "union") || IsI(i, "enum")) {
        // `struct Foo` introduces a type unless this is an elaborated
        // specifier inside a function head (no such pattern in this repo).
        size_t j = i + 1;
        while (j < e && (IsI(j, "class") || IsI(j, "struct") ||
                         IsP(j, "[") || IsP(j, "]"))) {
          ++j;
        }
        scope.kind = Scope::kClass;
        if (j < e && toks_[j].kind == Tok::kIdent) {
          scope.cls = toks_[j].text;
        }
        return scope;
      }
    }
    // function? first top-level `(` preceded by a non-keyword ident.
    int depth = 0;
    for (size_t i = b; i < e; ++i) {
      if (toks_[i].kind != Tok::kPunct) {
        continue;
      }
      const std::string& t = toks_[i].text;
      if (t == "(") {
        if (depth == 0 && i > b && toks_[i - 1].kind == Tok::kIdent) {
          const std::string& head = toks_[i - 1].text;
          static const std::set<std::string> kCtl = {"if",     "for",   "while",
                                                     "switch", "catch", "return"};
          if (kCtl.count(head) != 0) {
            scope.kind = Scope::kBlock;
            return scope;
          }
          size_t rp = Match(i);
          if (rp < e) {
            scope.kind = Scope::kFunction;
            scope.cls = OutOfLineClass(b, i);
            if (scope.cls.empty()) {
              for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
                if (it->kind == Scope::kClass) {
                  scope.cls = it->cls;
                  break;
                }
              }
            }
            bool per_host = false;
            DeclareParams(i, rp, &scope.symbols,
                          cluster_scope_ ? &per_host : nullptr);
            scope.cluster_per_host = per_host;
            if (cluster_scope_) {
              for (const auto& kv : scope.symbols) {
                if (TypeHasIdent(kv.second, "FleetCell")) {
                  scope.cluster_per_cell = true;
                  break;
                }
              }
            }
            return scope;
          }
        }
        ++depth;
      } else if (t == ")") {
        --depth;
      }
    }
    scope.kind = Scope::kBlock;
    return scope;
  }

  bool InPerHostScope() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->cluster_per_host) {
        return true;
      }
      if (it->kind == Scope::kFunction) {
        break;  // per-host taint does not cross an enclosing function head
      }
    }
    return false;
  }

  bool InPerCellScope() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->cluster_per_cell) {
        return true;
      }
      if (it->kind == Scope::kFunction) {
        break;  // per-cell taint does not cross an enclosing function head
      }
    }
    return false;
  }

  // ---- main walk -----------------------------------------------------------

  void Walk() {
    size_t stmt_start = 0;
    std::map<std::string, std::string> pending_block;  // for-init symbols
    std::set<size_t> lambda_opens;  // `{` indices that open lambda bodies

    for (size_t i = 0; i < Size();) {
      const Token& t = T(i);
      if (t.kind == Tok::kPunct) {
        if (t.text == "{") {
          Scope scope;
          if (lambda_opens.count(i) != 0) {
            // Scope was prepared when the lambda intro was parsed; it is
            // sitting in pending_lambda_.
            scope = std::move(pending_lambda_);
            pending_lambda_ = Scope{};
          } else {
            scope = ClassifyBrace(stmt_start, i);
          }
          for (auto& kv : pending_block) {
            scope.symbols.insert(kv);
          }
          pending_block.clear();
          scopes_.push_back(std::move(scope));
          stmt_start = i + 1;
          ++i;
          continue;
        }
        if (t.text == "}") {
          if (scopes_.size() > 1) {
            scopes_.pop_back();
          }
          lambda_opens.erase(i);
          stmt_start = i + 1;
          ++i;
          continue;
        }
        if (t.text == ";") {
          DeclareInCurrent(stmt_start, i);
          stmt_start = i + 1;
          ++i;
          continue;
        }
        if (t.text == ":" ) {
          // Reset after access specifiers and case labels so they don't
          // pollute the next statement span; leave ctor-init colons alone.
          if (i == stmt_start + 1 &&
              (IsI(stmt_start, "public") || IsI(stmt_start, "private") ||
               IsI(stmt_start, "protected") || IsI(stmt_start, "default"))) {
            stmt_start = i + 1;
          }
          ++i;
          continue;
        }
        if (t.text == "[") {
          if (IsP(i + 1, "[")) {  // attribute
            size_t close = Match(i);
            i = close < Size() ? close + 1 : i + 1;
            continue;
          }
          if (LooksLikeLambdaIntro(i)) {
            LambdaInfo info = ParseLambda(i);
            if (info.valid) {
              Scope ls;
              ls.kind = Scope::kLambda;
              for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
                if (it->kind == Scope::kFunction || it->kind == Scope::kLambda) {
                  ls.cls = it->cls;
                  break;
                }
              }
              for (const Capture& c : info.captures) {
                if (!c.name.empty() && c.name != "this" && c.name != "*this" &&
                    c.name[0] != '&') {
                  ls.symbols[c.name] = c.type;
                }
              }
              for (const auto& kv : info.params) {
                ls.symbols[kv.first] = kv.second;
              }
              pending_lambda_ = std::move(ls);
              lambda_opens.insert(info.body_open);
              // Jump straight to the body so capture-init expressions don't
              // confuse the statement splitter.
              stmt_start = i;  // keep span sane if body never materializes
              i = info.body_open;
              continue;
            }
          }
          ++i;
          continue;
        }
        ++i;
        continue;
      }

      if (t.kind == Tok::kIdent) {
        // for-init / range-for declarations bind to the upcoming block scope.
        if (t.text == "for" && IsP(i + 1, "(")) {
          size_t rp = Match(i + 1);
          if (rp < Size()) {
            size_t colon = rp;
            int depth = 0;
            for (size_t j = i + 2; j < rp; ++j) {
              if (toks_[j].kind != Tok::kPunct) {
                continue;
              }
              const std::string& pt = toks_[j].text;
              if (pt == "(" || pt == "[" || pt == "{") {
                ++depth;
              } else if (pt == ")" || pt == "]" || pt == "}") {
                --depth;
              } else if (pt == ":" && depth == 0) {
                colon = j;
                break;
              }
            }
            size_t decl_end = colon;
            if (colon == rp) {  // classic for: decl runs to the first `;`
              for (size_t j = i + 2; j < rp; ++j) {
                if (IsP(j, ";")) {
                  decl_end = j;
                  break;
                }
              }
            }
            std::string name;
            std::string type;
            if (ParseDecl(i + 2, decl_end, &name, &type)) {
              pending_block[name] = type;
            }
          }
        }

        const SinkSpec* sink = SinkAt(i);
        if (sink != nullptr) {
          size_t rp = Match(i + 1);
          if (rp < Size()) {
            for (const auto& span : SplitTopLevel(i + 2, rp)) {
              if (span.first < span.second && IsP(span.first, "[") &&
                  LooksLikeLambdaIntro(span.first)) {
                CheckPostedLambda(i, ParseLambda(span.first), sink->factory);
              }
            }
          }
        } else if (cluster_scope_ && MailboxSinkAt(i) != nullptr) {
          size_t rp = Match(i + 1);
          if (rp < Size()) {
            for (const auto& span : SplitTopLevel(i + 2, rp)) {
              if (span.first < span.second && IsP(span.first, "[") &&
                  LooksLikeLambdaIntro(span.first)) {
                CheckMailboxLambda(i, ParseLambda(span.first));
              }
            }
          }
        }

        if (cluster_scope_ && t.text == "cells_" && InPerCellScope()) {
          AnalysisFinding f;
          f.line = t.line;
          f.rule = kShardCrossingRule;
          f.message =
              "per-cell scope (function taking a FleetCell*) reaches the "
              "engine-wide cell array `cells_`; cross-cell effects must travel "
              "as barrier-mailbox messages, not direct cell access";
          findings_.push_back(std::move(f));
        }
        if (cluster_scope_ && t.text == "hosts_" && InPerHostScope()) {
          AnalysisFinding f;
          f.line = t.line;
          f.rule = kShardIsolationRule;
          f.message =
              "per-host scope (function taking a ClusterHost*) reaches the "
              "fleet-wide slot array `hosts_`; cross-host effects must go "
              "through control-plane events, not direct slot access";
          findings_.push_back(std::move(f));
        }
        if (placement_file_) {
          static const std::set<std::string> kForbidden = {
              "ClusterHost", "TenantVm", "HostMachine", "Fleet", "hosts_", "tenants_"};
          if (kForbidden.count(t.text) != 0) {
            AnalysisFinding f;
            f.line = t.line;
            f.rule = kShardIsolationRule;
            f.message = "placement policy references `" + t.text +
                        "`; policies consume HostLoadView snapshots only so "
                        "they can run against a remote shard's published state";
            findings_.push_back(std::move(f));
          }
        }
        ++i;
        continue;
      }

      ++i;
    }
  }

  const std::string& path_;
  const std::vector<Token>& toks_;
  const bool src_scope_;
  const bool cluster_scope_;
  const bool placement_file_;
  std::vector<Scope> scopes_;
  Scope pending_lambda_;
  std::vector<AnalysisFinding> findings_;
};

}  // namespace

std::vector<AnalysisFinding> Analyze(const std::string& path, const LexResult& lex) {
  return Analyzer(path, lex).Run();
}

}  // namespace lint
}  // namespace vsched
