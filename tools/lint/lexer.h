// A lossless-enough C++ lexer for vsched-lint.
//
// v1 of the lint worked on per-line "scrubbed" text produced by an ad-hoc
// character scanner. That scanner had three known blind spots that this
// lexer closes:
//
//   * raw string literals — `R"(...)"` (any delimiter, any prefix) can span
//     lines and legally contain `//`, quotes, and rule tokens;
//   * digit separators — `1'000'000` made the old scanner open a bogus char
//     literal at the first `'` and swallow real code until the next one;
//   * line continuations — a `\` at the end of a `//` comment splices the
//     next physical line into the comment, so code-looking text there is
//     dead, and conversely a continued *code* line must stay live.
//
// One pass produces three synchronized views of a translation unit:
//
//   1. `tokens`   — a flat token stream (identifiers, numbers, literals,
//                   punctuation) with 1-based physical line numbers, the
//                   input to the semantic analyzer (analyzer.h);
//   2. `scrubbed` — per-physical-line text with comments removed and
//                   string/char literal *contents* blanked (quotes kept),
//                   the input to the legacy token/regex rules;
//   3. `allows`   — per-physical-line `// vsched-lint: allow(<rules>)`
//                   grants parsed out of comment text, the input to the
//                   suppression machinery.
//
// The lexer does not run the preprocessor: `#include`/macros tokenize like
// ordinary code, which is what a source-level policy checker wants.
#ifndef TOOLS_LINT_LEXER_H_
#define TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace vsched {
namespace lint {

enum class Tok {
  kIdent,   // identifiers and keywords (the analyzer matches on text)
  kNumber,  // pp-number, digit separators included in one token
  kString,  // any string literal (ordinary, prefixed, raw); text is "\"\""
  kChar,    // char literal; text is "''"
  kPunct,   // operators/punctuation; multi-char operators kept whole
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;  // 1-based physical line where the token starts
};

struct LexResult {
  std::vector<Token> tokens;
  // scrubbed[i] is physical line i+1 with comments dropped and literal
  // contents blanked. A line fully consumed by a comment (including `//`
  // continuation lines and block-comment interiors) scrubs to "".
  std::vector<std::string> scrubbed;
  // allows[i] lists the rule names granted by suppression comments touching
  // physical line i+1 (a multi-line comment grants on every line it spans).
  std::vector<std::vector<std::string>> allows;
};

LexResult Lex(const std::string& content);

}  // namespace lint
}  // namespace vsched

#endif  // TOOLS_LINT_LEXER_H_
