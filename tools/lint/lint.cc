#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <regex>
#include <sstream>

#include "tools/lint/analyzer.h"
#include "tools/lint/lexer.h"

namespace vsched {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Path classification. Rules bind to directory scopes: everything under
// these prefixes executes *inside* the simulated world, where determinism
// rules are absolute. src/base is infrastructure (logging, counters, the
// audit switch) and src/runner is the parallel harness around the simulator
// (it legitimately reads wall clocks for reports).

bool PathContains(const std::string& path, const char* fragment) {
  return path.find(fragment) != std::string::npos;
}

// Simulated-world code: wall-clock reads are forbidden here. The cluster
// control plane (src/cluster) runs entirely inside the Simulation — every
// placement, provisioning, and migration decision must replay byte-identically
// — so it is held to the same rules as the per-VM stacks it orchestrates.
bool IsSimPath(const std::string& path) {
  return PathContains(path, "src/sim") || PathContains(path, "src/guest") ||
         PathContains(path, "src/host") || PathContains(path, "src/core") ||
         PathContains(path, "src/probe") || PathContains(path, "src/workloads") ||
         PathContains(path, "src/metrics") || PathContains(path, "src/stats") ||
         PathContains(path, "src/cluster");
}

// The hot scheduler state: hash-container iteration order must never be able
// to influence event or pick order.
bool IsSchedCorePath(const std::string& path) {
  return PathContains(path, "src/sim") || PathContains(path, "src/guest") ||
         PathContains(path, "src/host") || PathContains(path, "src/cluster");
}

bool IsBasePath(const std::string& path) { return PathContains(path, "src/base"); }

bool IsSrcPath(const std::string& path) { return PathContains(path, "src/"); }

// PELT is lazily evaluated: readers use UtilAt, and only the designated
// segment/dispatch transition points may fold the signal forward. pelt.cc
// itself (the signal's implementation) is exempt by path.
bool IsPeltUpdateScope(const std::string& path) {
  return IsSrcPath(path) && !PathContains(path, "src/guest/pelt");
}

// Fault-injection hooks (DropSample/CorruptSample) are confined to the
// designated probe injection points; FaultInjector::AuditVerify checks the
// same property at runtime. src/fault is the implementation and is exempt by
// path; the designated probe call sites carry allow comments.
bool IsFaultHookScope(const std::string& path) {
  return IsSrcPath(path) && !PathContains(path, "src/fault/");
}

// Adversarial co-tenant workloads (src/adversary/) model attackers with
// knowledge of platform constants but no visibility into the victim: they
// may drive Stressors and bandwidth caps on the public host surface, never
// read probe estimates, detection state, or injector hooks.
bool IsAdversaryPath(const std::string& path) {
  return PathContains(path, "src/adversary/");
}

bool Allowed(const std::vector<std::string>& allows, const std::string& rule) {
  return std::find(allows.begin(), allows.end(), rule) != allows.end();
}

// ---------------------------------------------------------------------------
// Namespace-scope tracking for the mutable-global rule. A tiny brace
// machine: each '{' is classified as namespace-opening (the code before it
// ends in a namespace declarator) or other (function/class/init-list). A
// line starts "at namespace scope" when every open brace is a namespace.

struct ScopeState {
  std::vector<char> stack;  // 'n' = namespace, 'o' = other
  std::string pending;      // code since the last brace, for classification
  int paren_depth = 0;      // >0 at line start: inside a multi-line (...) list

  bool AtNamespaceScope() const {
    return paren_depth == 0 &&
           std::all_of(stack.begin(), stack.end(), [](char k) { return k == 'n'; });
  }

  void Feed(const std::string& code) {
    static const std::regex kNamespaceTail(R"((^|[^\w])(inline\s+)?namespace(\s+[\w:]+)?\s*$)");
    for (char c : code) {
      if (c == '(') {
        ++paren_depth;
        pending.push_back(c);
      } else if (c == ')') {
        paren_depth = std::max(0, paren_depth - 1);
        pending.push_back(c);
      } else if (c == '{') {
        bool is_ns = std::regex_search(pending, kNamespaceTail);
        stack.push_back(is_ns ? 'n' : 'o');
        pending.clear();
      } else if (c == '}') {
        if (!stack.empty()) {
          stack.pop_back();
        }
        pending.clear();
      } else if (c == ';') {
        pending.clear();
      } else {
        pending.push_back(c);
      }
    }
  }
};

bool LooksLikeMutableGlobal(const std::string& code) {
  // Cheap exclusions first: type/alias/function machinery, immutables.
  static const std::regex kExcluded(
      R"(^\s*(#|using\b|typedef\b|class\b|struct\b|enum\b|template\b|friend\b|extern\b|namespace\b|static_assert\b|\[\[))");
  if (std::regex_search(code, kExcluded)) {
    return false;
  }
  if (code.find("const") != std::string::npos) {
    return false;  // const / constexpr / constinit const — all immutable
  }
  // A definition with an initializer, e.g. "static int g_x = 0;" or
  // "thread_local Foo g_f{};". Parenthesised lines are treated as function
  // declarations unless the '(' appears after '=' (initializer call).
  static const std::regex kDecl(
      R"(^\s*((static|thread_local|inline)\s+)*[A-Za-z_][\w:<>,\*&\s]*[\s\*&][A-Za-z_]\w*\s*(=[^=].*;|\{.*\}\s*;|;)\s*$)");
  if (!std::regex_match(code, kDecl)) {
    return false;
  }
  size_t paren = code.find('(');
  size_t eq = code.find('=');
  if (paren != std::string::npos && (eq == std::string::npos || paren < eq)) {
    return false;  // function declaration
  }
  return true;
}

// ---------------------------------------------------------------------------
// Token rules.

struct TokenRule {
  const char* name;
  const char* message;
  std::regex re;
  bool (*applies)(const std::string& path);
};

const std::vector<TokenRule>& TokenRules() {
  static const std::vector<TokenRule>* rules = new std::vector<TokenRule>{
      {"wall-clock",
       "wall-clock read in simulated code: all time must come from Simulation::now()",
       std::regex(R"(\b(std::chrono::|chrono::)?(system_clock|steady_clock|high_resolution_clock)\b|\b(clock_gettime|gettimeofday|timespec_get)\s*\(|\bstd::time\s*\()"),
       &IsSimPath},
      {"libc-rand",
       "unseeded libc/global entropy source: use the simulation's seeded Rng",
       std::regex(R"(\bstd::random_device\b|\brandom_device\b|\b(std::)?(rand|srand|drand48|lrand48|mrand48)\s*\()"),
       &IsSrcPath},
      {"unordered-container",
       "hash container in scheduler-core code: iteration order is not deterministic "
       "across libstdc++ versions/ASLR; use a sorted/flat container",
       std::regex(R"(\bunordered_(map|set|multimap|multiset)\b)"), &IsSchedCorePath},
      {"unseeded-rng",
       "std random engine constructed without an explicit seed: derive one from "
       "Simulation::ForkRng() or the run's seed",
       std::regex(
           R"(\b(std::)?(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux(24|48)(_base)?|knuth_b)\s+\w+\s*(;|\{\s*\}|\(\s*\)))"),
       &IsSrcPath},
      {"raw-double-accum",
       "raw floating-point accumulation into long-lived load/vruntime state: use a "
       "compensated (Neumaier) sum or integer units",
       std::regex(R"(\b\w*(load|vruntime)\w*_\s*[+\-]=)"), &IsSimPath},
      {"pelt-eager-update",
       "direct PeltSignal::Update outside src/guest/pelt.cc: PELT is pull-based — "
       "read with UtilAt and mutate only at the designated segment/dispatch entry "
       "points (mark those with a vsched-lint allow comment)",
       std::regex(R"(\bpelt_\.\s*Update\s*\(|\bPeltSignal::Update\b)"),
       &IsPeltUpdateScope},
      {"fault-injection-point",
       "fault-injection hook outside a designated probe injection point: "
       "DropSample/CorruptSample may only be called at the registered ProbePoint "
       "sites (mark those with a vsched-lint allow comment)",
       std::regex(R"(\b(DropSample|CorruptSample)\s*\()"), &IsFaultHookScope},
      {"adversary-surface",
       "adversary workload touches estimator or injector internals: attack "
       "drivers act only through the public host surface (Stressor, bandwidth "
       "caps) — the threat model grants platform constants, not victim state",
       std::regex(
           R"(\b(Vcap|Vact|Vtop|VSched|Bvs|Ivh|Rwc|PairProbe|ConfidenceTracker|DegradationTracker|FaultInjector|DropSample|CorruptSample|CapacityOf|MedianLatency|QuarantinedMask|SetCapacityOverride|set_degraded|set_freeze|RebuildSchedDomains)\b)"),
       &IsAdversaryPath},
  };
  return *rules;
}

constexpr const char kMutableGlobalName[] = "mutable-global";
constexpr const char kMutableGlobalMsg[] =
    "mutable namespace-scope state outside src/base: shared mutable globals break "
    "parallel-run determinism; move it into src/base or behind a per-Simulation object";

// ---------------------------------------------------------------------------
// JSON helpers (no third-party JSON dependency — the schema is tiny).

void JsonEscape(const std::string& s, std::ostream& os) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void JsonString(const std::string& s, std::ostream& os) {
  os << '"';
  JsonEscape(s, os);
  os << '"';
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* rules = [] {
    auto* r = new std::vector<RuleInfo>();
    for (const TokenRule& t : TokenRules()) {
      r->push_back({t.name, t.message});
    }
    r->push_back({kMutableGlobalName, kMutableGlobalMsg});
    r->push_back({kEventLifetimeRule,
                  "event closure captures this/a raw pointer/a reference without a "
                  "checked weak_ptr liveness token: the posted event can outlive its "
                  "owner (the PR-6 use-after-free class)"});
    r->push_back({kShardIsolationRule,
                  "cluster shard-isolation violation: another host's mutable state may "
                  "only be reached through the control-plane message/event interface "
                  "(slot pointers must not cross the event boundary; placement sees "
                  "HostLoadView snapshots only)"});
    r->push_back({kShardCrossingRule,
                  "sharded-engine isolation violation: barrier-mailbox messages must "
                  "carry ids (never FleetCell/Simulation/slot pointers or references) "
                  "and per-cell scopes may not reach the engine-wide cell array; "
                  "cross-cell effects travel as mailbox messages applied at window "
                  "boundaries"});
    return r;
  }();
  return *rules;
}

std::vector<Finding> LintFile(const std::string& path, const std::string& content) {
  std::vector<Finding> findings;
  const LexResult lex = Lex(content);
  ScopeState scope;

  auto effective_allows = [&lex](int line_no) {
    // A suppression covers its own line(s) and the line directly below.
    std::vector<std::string> out;
    size_t idx = static_cast<size_t>(line_no) - 1;
    if (idx < lex.allows.size()) {
      out = lex.allows[idx];
    }
    if (idx >= 1 && idx - 1 < lex.allows.size()) {
      out.insert(out.end(), lex.allows[idx - 1].begin(), lex.allows[idx - 1].end());
    }
    return out;
  };

  for (size_t i = 0; i < lex.scrubbed.size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const std::string& code = lex.scrubbed[i];
    const std::vector<std::string> effective = effective_allows(line_no);

    const bool at_ns_scope = scope.AtNamespaceScope();
    scope.Feed(code);

    for (const TokenRule& rule : TokenRules()) {
      if (!rule.applies(path)) {
        continue;
      }
      if (std::regex_search(code, rule.re) && !Allowed(effective, rule.name)) {
        findings.push_back({path, line_no, rule.name, rule.message, {}, {}});
      }
    }
    if (!IsBasePath(path) && IsSrcPath(path) && at_ns_scope && LooksLikeMutableGlobal(code) &&
        !Allowed(effective, kMutableGlobalName)) {
      findings.push_back({path, line_no, kMutableGlobalName, kMutableGlobalMsg, {}, {}});
    }
  }

  for (AnalysisFinding& af : Analyze(path, lex)) {
    if (Allowed(effective_allows(af.line), af.rule)) {
      continue;
    }
    Finding f;
    f.file = path;
    f.line = af.line;
    f.rule = std::move(af.rule);
    f.message = std::move(af.message);
    f.sink = std::move(af.sink);
    f.captures = std::move(af.captures);
    findings.push_back(std::move(f));
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

bool LintPath(const std::string& path, std::vector<Finding>* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::file_status st = fs::status(path, ec);
  if (ec) {
    return false;
  }
  std::vector<std::string> files;
  if (fs::is_directory(st)) {
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
        files.push_back(entry.path().generic_string());
      }
    }
    if (ec) {
      return false;
    }
  } else {
    files.push_back(path);
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  for (const std::string& file : files) {
    std::ifstream f(file, std::ios::binary);
    if (!f) {
      return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    std::vector<Finding> found = LintFile(file, buf.str());
    out->insert(out->end(), found.begin(), found.end());
  }
  return true;
}

void WriteJsonReport(const std::vector<Finding>& findings, std::ostream& os) {
  os << "{\n  \"version\": 2,\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"file\": ";
    JsonString(f.file, os);
    os << ", \"line\": " << f.line << ", \"rule\": ";
    JsonString(f.rule, os);
    os << ", \"message\": ";
    JsonString(f.message, os);
    if (!f.sink.empty()) {
      os << ", \"sink\": ";
      JsonString(f.sink, os);
    }
    if (!f.captures.empty()) {
      os << ", \"captures\": [";
      for (size_t c = 0; c < f.captures.size(); ++c) {
        const Capture& cap = f.captures[c];
        os << (c == 0 ? "" : ", ") << "{\"name\": ";
        JsonString(cap.name, os);
        os << ", \"kind\": ";
        JsonString(cap.kind, os);
        if (!cap.type.empty()) {
          os << ", \"type\": ";
          JsonString(cap.type, os);
        }
        os << "}";
      }
      os << "]";
    }
    os << "}";
  }
  os << (findings.empty() ? "]" : "\n  ]") << ",\n  \"count\": " << findings.size()
     << "\n}\n";
}

void WriteGithubAnnotations(const std::vector<Finding>& findings, std::ostream& os) {
  for (const Finding& f : findings) {
    // Workflow-command sanitization: the message must stay on one line and
    // %, \r, \n are escaped per the Actions toolkit rules.
    std::string msg = "[" + f.rule + "] " + f.message;
    std::string esc;
    esc.reserve(msg.size());
    for (char c : msg) {
      if (c == '%') {
        esc += "%25";
      } else if (c == '\r') {
        esc += "%0D";
      } else if (c == '\n') {
        esc += "%0A";
      } else {
        esc += c;
      }
    }
    os << "::error file=" << f.file << ",line=" << f.line << "::" << esc << "\n";
  }
}

}  // namespace lint
}  // namespace vsched
