#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace vsched {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Path classification. Rules bind to directory scopes: everything under
// these prefixes executes *inside* the simulated world, where determinism
// rules are absolute. src/base is infrastructure (logging, counters, the
// audit switch) and src/runner is the parallel harness around the simulator
// (it legitimately reads wall clocks for reports).

bool PathContains(const std::string& path, const char* fragment) {
  return path.find(fragment) != std::string::npos;
}

// Simulated-world code: wall-clock reads are forbidden here. The cluster
// control plane (src/cluster) runs entirely inside the Simulation — every
// placement, provisioning, and migration decision must replay byte-identically
// — so it is held to the same rules as the per-VM stacks it orchestrates.
bool IsSimPath(const std::string& path) {
  return PathContains(path, "src/sim") || PathContains(path, "src/guest") ||
         PathContains(path, "src/host") || PathContains(path, "src/core") ||
         PathContains(path, "src/probe") || PathContains(path, "src/workloads") ||
         PathContains(path, "src/metrics") || PathContains(path, "src/stats") ||
         PathContains(path, "src/cluster");
}

// The hot scheduler state: hash-container iteration order must never be able
// to influence event or pick order.
bool IsSchedCorePath(const std::string& path) {
  return PathContains(path, "src/sim") || PathContains(path, "src/guest") ||
         PathContains(path, "src/host") || PathContains(path, "src/cluster");
}

bool IsBasePath(const std::string& path) { return PathContains(path, "src/base"); }

bool IsSrcPath(const std::string& path) { return PathContains(path, "src/"); }

// PELT is lazily evaluated: readers use UtilAt, and only the designated
// segment/dispatch transition points may fold the signal forward. pelt.cc
// itself (the signal's implementation) is exempt by path.
bool IsPeltUpdateScope(const std::string& path) {
  return IsSrcPath(path) && !PathContains(path, "src/guest/pelt");
}

// Fault-injection hooks (DropSample/CorruptSample) are confined to the
// designated probe injection points; FaultInjector::AuditVerify checks the
// same property at runtime. src/fault is the implementation and is exempt by
// path; the designated probe call sites carry allow comments.
bool IsFaultHookScope(const std::string& path) {
  return IsSrcPath(path) && !PathContains(path, "src/fault/");
}

// ---------------------------------------------------------------------------
// Per-line preprocessing: the scanner works on a copy of each line with
// comments and string/char literal *contents* blanked out, so a rule token
// inside a doc comment or a log message never fires. Block-comment state
// carries across lines. Suppression comments are read from the raw line
// (they live inside comments by design).

struct ScrubState {
  bool in_block_comment = false;
  // Raw-string literals are not handled; none appear in this codebase and
  // the worst case is a spurious finding, fixable with a suppression.
};

std::string ScrubLine(const std::string& raw, ScrubState* state) {
  std::string out;
  out.reserve(raw.size());
  size_t i = 0;
  const size_t n = raw.size();
  while (i < n) {
    if (state->in_block_comment) {
      if (raw[i] == '*' && i + 1 < n && raw[i + 1] == '/') {
        state->in_block_comment = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    char c = raw[i];
    if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
      break;  // line comment: rest of line is dead
    }
    if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
      state->in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      out.push_back(quote);
      ++i;
      while (i < n) {
        if (raw[i] == '\\') {
          i += 2;
          continue;
        }
        if (raw[i] == quote) {
          out.push_back(quote);
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: "vsched-lint: allow(rule-a, rule-b)" in a comment on the
// offending line or the line directly above.

std::vector<std::string> ParseAllowList(const std::string& raw) {
  static const std::regex kAllowRe(R"(vsched-lint:\s*allow\(([A-Za-z0-9_\-, ]+)\))");
  std::vector<std::string> rules;
  std::smatch m;
  std::string rest = raw;
  while (std::regex_search(rest, m, kAllowRe)) {
    std::stringstream list(m[1].str());
    std::string item;
    while (std::getline(list, item, ',')) {
      size_t b = item.find_first_not_of(" \t");
      size_t e = item.find_last_not_of(" \t");
      if (b != std::string::npos) {
        rules.push_back(item.substr(b, e - b + 1));
      }
    }
    rest = m.suffix();
  }
  return rules;
}

bool Allowed(const std::vector<std::string>& allows, const char* rule) {
  return std::find(allows.begin(), allows.end(), rule) != allows.end();
}

// ---------------------------------------------------------------------------
// Namespace-scope tracking for the mutable-global rule. A tiny brace
// machine: each '{' is classified as namespace-opening (the code before it
// ends in a namespace declarator) or other (function/class/init-list). A
// line starts "at namespace scope" when every open brace is a namespace.

struct ScopeState {
  std::vector<char> stack;  // 'n' = namespace, 'o' = other
  std::string pending;      // code since the last brace, for classification
  int paren_depth = 0;      // >0 at line start: inside a multi-line (...) list

  bool AtNamespaceScope() const {
    return paren_depth == 0 &&
           std::all_of(stack.begin(), stack.end(), [](char k) { return k == 'n'; });
  }

  void Feed(const std::string& code) {
    static const std::regex kNamespaceTail(R"((^|[^\w])(inline\s+)?namespace(\s+[\w:]+)?\s*$)");
    for (char c : code) {
      if (c == '(') {
        ++paren_depth;
        pending.push_back(c);
      } else if (c == ')') {
        paren_depth = std::max(0, paren_depth - 1);
        pending.push_back(c);
      } else if (c == '{') {
        bool is_ns = std::regex_search(pending, kNamespaceTail);
        stack.push_back(is_ns ? 'n' : 'o');
        pending.clear();
      } else if (c == '}') {
        if (!stack.empty()) {
          stack.pop_back();
        }
        pending.clear();
      } else if (c == ';') {
        pending.clear();
      } else {
        pending.push_back(c);
      }
    }
  }
};

bool LooksLikeMutableGlobal(const std::string& code) {
  // Cheap exclusions first: type/alias/function machinery, immutables.
  static const std::regex kExcluded(
      R"(^\s*(#|using\b|typedef\b|class\b|struct\b|enum\b|template\b|friend\b|extern\b|namespace\b|static_assert\b|\[\[))");
  if (std::regex_search(code, kExcluded)) {
    return false;
  }
  if (code.find("const") != std::string::npos) {
    return false;  // const / constexpr / constinit const — all immutable
  }
  // A definition with an initializer, e.g. "static int g_x = 0;" or
  // "thread_local Foo g_f{};". Parenthesised lines are treated as function
  // declarations unless the '(' appears after '=' (initializer call).
  static const std::regex kDecl(
      R"(^\s*((static|thread_local|inline)\s+)*[A-Za-z_][\w:<>,\*&\s]*[\s\*&][A-Za-z_]\w*\s*(=[^=].*;|\{.*\}\s*;|;)\s*$)");
  if (!std::regex_match(code, kDecl)) {
    return false;
  }
  size_t paren = code.find('(');
  size_t eq = code.find('=');
  if (paren != std::string::npos && (eq == std::string::npos || paren < eq)) {
    return false;  // function declaration
  }
  return true;
}

// ---------------------------------------------------------------------------
// Token rules.

struct TokenRule {
  const char* name;
  const char* message;
  std::regex re;
  bool (*applies)(const std::string& path);
};

const std::vector<TokenRule>& TokenRules() {
  static const std::vector<TokenRule>* rules = new std::vector<TokenRule>{
      {"wall-clock",
       "wall-clock read in simulated code: all time must come from Simulation::now()",
       std::regex(R"(\b(std::chrono::|chrono::)?(system_clock|steady_clock|high_resolution_clock)\b|\b(clock_gettime|gettimeofday|timespec_get)\s*\(|\bstd::time\s*\()"),
       &IsSimPath},
      {"libc-rand",
       "unseeded libc/global entropy source: use the simulation's seeded Rng",
       std::regex(R"(\bstd::random_device\b|\brandom_device\b|\b(std::)?(rand|srand|drand48|lrand48|mrand48)\s*\()"),
       &IsSrcPath},
      {"unordered-container",
       "hash container in scheduler-core code: iteration order is not deterministic "
       "across libstdc++ versions/ASLR; use a sorted/flat container",
       std::regex(R"(\bunordered_(map|set|multimap|multiset)\b)"), &IsSchedCorePath},
      {"unseeded-rng",
       "std random engine constructed without an explicit seed: derive one from "
       "Simulation::ForkRng() or the run's seed",
       std::regex(
           R"(\b(std::)?(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux(24|48)(_base)?|knuth_b)\s+\w+\s*(;|\{\s*\}|\(\s*\)))"),
       &IsSrcPath},
      {"raw-double-accum",
       "raw floating-point accumulation into long-lived load/vruntime state: use a "
       "compensated (Neumaier) sum or integer units",
       std::regex(R"(\b\w*(load|vruntime)\w*_\s*[+\-]=)"), &IsSimPath},
      {"pelt-eager-update",
       "direct PeltSignal::Update outside src/guest/pelt.cc: PELT is pull-based — "
       "read with UtilAt and mutate only at the designated segment/dispatch entry "
       "points (mark those with a vsched-lint allow comment)",
       std::regex(R"(\bpelt_\.\s*Update\s*\(|\bPeltSignal::Update\b)"),
       &IsPeltUpdateScope},
      {"fault-injection-point",
       "fault-injection hook outside a designated probe injection point: "
       "DropSample/CorruptSample may only be called at the registered ProbePoint "
       "sites (mark those with a vsched-lint allow comment)",
       std::regex(R"(\b(DropSample|CorruptSample)\s*\()"), &IsFaultHookScope},
  };
  return *rules;
}

constexpr const char kMutableGlobalName[] = "mutable-global";
constexpr const char kMutableGlobalMsg[] =
    "mutable namespace-scope state outside src/base: shared mutable globals break "
    "parallel-run determinism; move it into src/base or behind a per-Simulation object";

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* rules = [] {
    auto* r = new std::vector<RuleInfo>();
    for (const TokenRule& t : TokenRules()) {
      r->push_back({t.name, t.message});
    }
    r->push_back({kMutableGlobalName, kMutableGlobalMsg});
    return r;
  }();
  return *rules;
}

std::vector<Finding> LintFile(const std::string& path, const std::string& content) {
  std::vector<Finding> findings;
  ScrubState scrub;
  ScopeState scope;
  std::vector<std::string> prev_allows;

  std::istringstream in(content);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::vector<std::string> allows = ParseAllowList(raw);
    // A suppression on its own line covers the next line too.
    std::vector<std::string> effective = allows;
    effective.insert(effective.end(), prev_allows.begin(), prev_allows.end());

    const bool at_ns_scope = scope.AtNamespaceScope();
    std::string code = ScrubLine(raw, &scrub);
    scope.Feed(code);

    for (const TokenRule& rule : TokenRules()) {
      if (!rule.applies(path)) {
        continue;
      }
      if (std::regex_search(code, rule.re) && !Allowed(effective, rule.name)) {
        findings.push_back({path, line_no, rule.name, rule.message});
      }
    }
    if (!IsBasePath(path) && IsSrcPath(path) && at_ns_scope && LooksLikeMutableGlobal(code) &&
        !Allowed(effective, kMutableGlobalName)) {
      findings.push_back({path, line_no, kMutableGlobalName, kMutableGlobalMsg});
    }
    prev_allows = std::move(allows);
  }
  return findings;
}

bool LintPath(const std::string& path, std::vector<Finding>* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::file_status st = fs::status(path, ec);
  if (ec) {
    return false;
  }
  std::vector<std::string> files;
  if (fs::is_directory(st)) {
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
        files.push_back(entry.path().generic_string());
      }
    }
    if (ec) {
      return false;
    }
  } else {
    files.push_back(path);
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  for (const std::string& file : files) {
    std::ifstream f(file, std::ios::binary);
    if (!f) {
      return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    std::vector<Finding> found = LintFile(file, buf.str());
    out->insert(out->end(), found.begin(), found.end());
  }
  return true;
}

}  // namespace lint
}  // namespace vsched
