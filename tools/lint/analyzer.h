// vsched-lint v2: the semantic layer (symbol table + lambda-capture flow).
//
// The token rules in lint.cc catch *what code says* (a wall-clock call is a
// wall-clock call on any line). The bug class PR 6 fixed — event closures
// capturing `this` or a raw pointer into a queue that outlives the owner —
// is invisible at token level: the offending line looks identical to a safe
// one, and whether it is safe depends on *where the closure flows* and *what
// the capture list holds*. This analyzer adds exactly that much semantics,
// and no more:
//
//   1. a scope walk over the lexer's token stream (lexer.h) classifying each
//      brace as namespace / class / function / lambda / block, tracking the
//      enclosing class of member functions (including out-of-line
//      `Ret Cls::Fn(...)` definitions);
//   2. a per-scope symbol table of parameters and local declarations
//      (name → declared type text), enough to classify what a by-value
//      capture actually copies — an int, a shared_ptr, or a raw pointer;
//   3. a capture analyzer for every lambda literal passed to an event
//      *sink*: `Simulation::After/At`, `EventQueue::ScheduleAt/After`,
//      `CreateTimer`, `Every`, the IPI queue (`GuestKernel::RunOnVcpu`),
//      tick-hook registration (`AddTickHook`), the fault injector's
//      posting wrapper (`ArmArrival`), and the batch-posting entry point
//      (`EventQueue::PostBatch` — a *factory* sink: the lambda passed in is
//      invoked synchronously, so the rules apply to the closure it returns).
//
// Three rule families run on top:
//
//   event-lifetime — a posted closure that captures `this`, a raw pointer,
//     or anything by reference must also carry a weak_ptr liveness token
//     *checked in the body* (`tok.expired()` / `tok.lock()`): the PR-6 fix
//     pattern. Fleet tenants tear their whole stack down mid-simulation, so
//     "the owner obviously outlives the queue" is not an argument — it has
//     to be machine-checked or explicitly allowed.
//
//   shard-isolation — in src/cluster/, state of another host may only be
//     touched through the control-plane message interface (the invariant
//     ROADMAP item 1's per-host PDES sharding will rely on): posted closures
//     must capture slot *ids* and re-resolve at delivery rather than hold
//     ClusterHost/TenantVm/HostMachine/Vm pointers across the event
//     boundary; per-host scopes (functions taking a ClusterHost*) must not
//     reach the fleet-wide slot array; placement policies consume
//     HostLoadView snapshots only.
//
//   shard-crossing — the sharded PDES engine's isolation contract (see
//     docs/PERF.md, "Sharded fleet execution"): a closure posted to the
//     barrier mailbox (`ShardMailbox::Post`) is delivered at a *later window*,
//     possibly after the referenced cell ran concurrently — it must carry
//     ids and re-resolve cell-local state at delivery, never FleetCell /
//     Simulation / slot pointers or references; and per-cell scopes
//     (functions taking a FleetCell*) must not reach the engine-wide
//     `cells_` array — cross-cell effects travel as mailbox messages only.
//     `this` is allowed in mailbox closures: the coordinator drains the
//     mailbox single-threaded and the mailbox dies with its owner.
#ifndef TOOLS_LINT_ANALYZER_H_
#define TOOLS_LINT_ANALYZER_H_

#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace vsched {
namespace lint {

// One entry of a lambda's capture list, classified. `kind` is one of:
//   "this"         — captures the enclosing object raw
//   "star-this"    — *this copy (safe)
//   "default-ref"  — [&]
//   "default-copy" — [=] (implicitly captures this in member functions)
//   "by-ref"       — [&name]
//   "raw-pointer"  — by-value copy of a raw pointer (or pointer container)
//   "weak-token"   — a weak_ptr liveness token
//   "owner"        — shared_ptr copy (keeps the target alive)
//   "value"        — plain value copy
//   "unknown"      — unresolved symbol; treated as a value copy
// The kind strings are part of the JSON output schema (docs/ANALYSIS.md).
struct Capture {
  std::string name;
  std::string kind;
  std::string type;  // declared type text when resolved, "" otherwise
};

struct AnalysisFinding {
  int line = 0;
  std::string rule;  // "event-lifetime", "shard-isolation" or "shard-crossing"
  std::string message;
  std::string sink;  // the posting call, e.g. "sim_->After" (lifetime only)
  std::vector<Capture> captures;
};

const char kEventLifetimeRule[] = "event-lifetime";
const char kShardIsolationRule[] = "shard-isolation";
const char kShardCrossingRule[] = "shard-crossing";

// Runs both semantic rule families over one lexed TU. `path` decides
// scoping: event-lifetime binds to src/, shard-isolation to src/cluster/.
// Suppression filtering happens in the caller (LintFile) so the allow
// machinery stays in one place.
std::vector<AnalysisFinding> Analyze(const std::string& path, const LexResult& lex);

}  // namespace lint
}  // namespace vsched

#endif  // TOOLS_LINT_ANALYZER_H_
