// vsched-lint: a determinism- and lifetime-focused static checker for the
// simulator.
//
// The simulator's headline property is bit-exact reproducibility (same seed →
// byte-identical JSONL, any --jobs value). That property rests on coding
// rules no compiler enforces: simulated components must never read wall
// clocks or unseeded entropy, never iterate hash containers (iteration order
// varies across libstdc++ versions and ASLR), and never accumulate
// long-lived load/vruntime state with raw floating-point `+=` (drift breaks
// cross-ordering equivalence). v2 adds a semantic layer (lexer.h,
// analyzer.h) that also checks *event-closure lifetime* — lambdas posted to
// the event queue must carry a checked weak_ptr liveness token, the PR-6 UAF
// fix pattern — and *shard isolation* in the cluster layer. No compiler
// front-end needed, which keeps the tool dependency-free and fast enough to
// run as a ctest.
//
// Every rule is individually suppressible at a call site with
//
//   // vsched-lint: allow(<rule>[, <rule>...]) — optional rationale
//
// placed on the offending line or the line directly above it. Suppressions
// are deliberate and reviewable; the CI job fails on any unsuppressed
// finding. Rules and rationale are documented in docs/ANALYSIS.md.
#ifndef TOOLS_LINT_LINT_H_
#define TOOLS_LINT_LINT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "tools/lint/analyzer.h"

namespace vsched {
namespace lint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
  // Semantic-rule context (empty for token rules). `sink` is the posting
  // call the closure flowed into; `captures` is the classified capture chain.
  std::string sink;
  std::vector<Capture> captures;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

// All rules in report order (stable; tests and --list-rules rely on it).
const std::vector<RuleInfo>& Rules();

// Lints one file. `path` decides which directory-scoped rules apply (e.g.
// wall-clock rules bind to simulated code under src/sim|guest|host|core|...,
// not to the runner, which legitimately measures harness wall time).
// `content` is the full file text.
std::vector<Finding> LintFile(const std::string& path, const std::string& content);

// Recursively lints every .h/.cc/.cpp/.hpp under `path` (or the single file),
// appending to `out`. Returns false if `path` cannot be read.
bool LintPath(const std::string& path, std::vector<Finding>* out);

// Machine-readable report: {"version":2,"findings":[{file,line,rule,message,
// sink,captures:[{name,kind,type}]}]}. Schema documented in docs/ANALYSIS.md;
// consumed by the CI artifact step and validated by a ctest.
void WriteJsonReport(const std::vector<Finding>& findings, std::ostream& os);

// One "::error file=...,line=...::" line per finding — GitHub Actions
// workflow-command annotations, surfaced inline on PR diffs.
void WriteGithubAnnotations(const std::vector<Finding>& findings, std::ostream& os);

}  // namespace lint
}  // namespace vsched

#endif  // TOOLS_LINT_LINT_H_
