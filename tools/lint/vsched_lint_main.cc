// vsched_lint: CLI driver for the determinism/lifetime checker (see lint.h).
//
//   vsched_lint [--list-rules] [--json FILE] [--github] PATH...
//
// Each PATH is a file or a directory (scanned recursively for C++ sources).
// Prints one line per finding and exits 1 when any finding is unsuppressed —
// which is how the ctest/CI hook fails the build. Exit 2 on usage errors.
//
//   --json FILE   additionally write the machine-readable report (schema in
//                 docs/ANALYSIS.md) to FILE, or stdout when FILE is "-". The
//                 report is written even when there are zero findings, so CI
//                 can archive it unconditionally.
//   --github      additionally emit one GitHub Actions "::error" workflow
//                 command per finding, so findings annotate PR diffs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  bool github = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const vsched::lint::RuleInfo& rule : vsched::lint::Rules()) {
        std::printf("%-20s %s\n", rule.name, rule.summary);
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vsched_lint: --json needs a file argument\n");
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--github") == 0) {
      github = true;
      continue;
    }
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: vsched_lint [--list-rules] [--json FILE] [--github] PATH...\n");
      return 0;
    }
    if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "vsched_lint: unknown flag %s\n", argv[i]);
      return 2;
    }
    paths.push_back(argv[i]);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: vsched_lint [--list-rules] [--json FILE] [--github] PATH...\n");
    return 2;
  }

  std::vector<vsched::lint::Finding> findings;
  for (const std::string& path : paths) {
    if (!vsched::lint::LintPath(path, &findings)) {
      std::fprintf(stderr, "vsched_lint: cannot read %s\n", path.c_str());
      return 2;
    }
  }
  for (const vsched::lint::Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(), f.message.c_str());
  }
  if (!json_path.empty()) {
    if (json_path == "-") {
      vsched::lint::WriteJsonReport(findings, std::cout);
    } else {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "vsched_lint: cannot write %s\n", json_path.c_str());
        return 2;
      }
      vsched::lint::WriteJsonReport(findings, out);
    }
  }
  if (github) {
    std::ostringstream ann;
    vsched::lint::WriteGithubAnnotations(findings, ann);
    std::fputs(ann.str().c_str(), stdout);
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "vsched_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
