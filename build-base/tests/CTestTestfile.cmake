# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-base/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-base/tests/base_tests[1]_include.cmake")
include("/root/repo/build-base/tests/sim_tests[1]_include.cmake")
include("/root/repo/build-base/tests/stats_tests[1]_include.cmake")
include("/root/repo/build-base/tests/host_tests[1]_include.cmake")
include("/root/repo/build-base/tests/workloads_tests[1]_include.cmake")
include("/root/repo/build-base/tests/metrics_tests[1]_include.cmake")
include("/root/repo/build-base/tests/core_tests[1]_include.cmake")
include("/root/repo/build-base/tests/probe_tests[1]_include.cmake")
include("/root/repo/build-base/tests/fault_tests[1]_include.cmake")
include("/root/repo/build-base/tests/runner_tests[1]_include.cmake")
include("/root/repo/build-base/tests/audit_tests[1]_include.cmake")
include("/root/repo/build-base/tests/lint_tests[1]_include.cmake")
include("/root/repo/build-base/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build-base/tests/guest_tests[1]_include.cmake")
