file(REMOVE_RECURSE
  "CMakeFiles/audit_tests.dir/audit/audit_test.cc.o"
  "CMakeFiles/audit_tests.dir/audit/audit_test.cc.o.d"
  "CMakeFiles/audit_tests.dir/audit/fault_audit_test.cc.o"
  "CMakeFiles/audit_tests.dir/audit/fault_audit_test.cc.o.d"
  "audit_tests"
  "audit_tests.pdb"
  "audit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
