file(REMOVE_RECURSE
  "CMakeFiles/lint_tests.dir/lint/json_test.cc.o"
  "CMakeFiles/lint_tests.dir/lint/json_test.cc.o.d"
  "CMakeFiles/lint_tests.dir/lint/lexer_test.cc.o"
  "CMakeFiles/lint_tests.dir/lint/lexer_test.cc.o.d"
  "CMakeFiles/lint_tests.dir/lint/lifetime_test.cc.o"
  "CMakeFiles/lint_tests.dir/lint/lifetime_test.cc.o.d"
  "CMakeFiles/lint_tests.dir/lint/lint_test.cc.o"
  "CMakeFiles/lint_tests.dir/lint/lint_test.cc.o.d"
  "CMakeFiles/lint_tests.dir/lint/shard_test.cc.o"
  "CMakeFiles/lint_tests.dir/lint/shard_test.cc.o.d"
  "lint_tests"
  "lint_tests.pdb"
  "lint_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
