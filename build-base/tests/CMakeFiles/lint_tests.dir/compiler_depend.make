# Empty compiler generated dependencies file for lint_tests.
# This may be replaced when dependencies are built.
