file(REMOVE_RECURSE
  "CMakeFiles/runner_tests.dir/runner/resilience_test.cc.o"
  "CMakeFiles/runner_tests.dir/runner/resilience_test.cc.o.d"
  "CMakeFiles/runner_tests.dir/runner/result_sink_test.cc.o"
  "CMakeFiles/runner_tests.dir/runner/result_sink_test.cc.o.d"
  "CMakeFiles/runner_tests.dir/runner/resume_test.cc.o"
  "CMakeFiles/runner_tests.dir/runner/resume_test.cc.o.d"
  "CMakeFiles/runner_tests.dir/runner/runner_test.cc.o"
  "CMakeFiles/runner_tests.dir/runner/runner_test.cc.o.d"
  "CMakeFiles/runner_tests.dir/runner/thread_pool_test.cc.o"
  "CMakeFiles/runner_tests.dir/runner/thread_pool_test.cc.o.d"
  "runner_tests"
  "runner_tests.pdb"
  "runner_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
