# Empty dependencies file for runner_tests.
# This may be replaced when dependencies are built.
