file(REMOVE_RECURSE
  "CMakeFiles/metrics_tests.dir/metrics/experiment_test.cc.o"
  "CMakeFiles/metrics_tests.dir/metrics/experiment_test.cc.o.d"
  "CMakeFiles/metrics_tests.dir/metrics/scenario_test.cc.o"
  "CMakeFiles/metrics_tests.dir/metrics/scenario_test.cc.o.d"
  "metrics_tests"
  "metrics_tests.pdb"
  "metrics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
