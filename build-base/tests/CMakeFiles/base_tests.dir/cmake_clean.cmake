file(REMOVE_RECURSE
  "CMakeFiles/base_tests.dir/base/log_check_test.cc.o"
  "CMakeFiles/base_tests.dir/base/log_check_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/perf_counters_test.cc.o"
  "CMakeFiles/base_tests.dir/base/perf_counters_test.cc.o.d"
  "CMakeFiles/base_tests.dir/base/time_test.cc.o"
  "CMakeFiles/base_tests.dir/base/time_test.cc.o.d"
  "base_tests"
  "base_tests.pdb"
  "base_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
