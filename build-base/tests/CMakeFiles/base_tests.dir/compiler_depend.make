# Empty compiler generated dependencies file for base_tests.
# This may be replaced when dependencies are built.
