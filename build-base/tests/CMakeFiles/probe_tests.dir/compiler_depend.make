# Empty compiler generated dependencies file for probe_tests.
# This may be replaced when dependencies are built.
