file(REMOVE_RECURSE
  "CMakeFiles/probe_tests.dir/probe/pair_probe_test.cc.o"
  "CMakeFiles/probe_tests.dir/probe/pair_probe_test.cc.o.d"
  "CMakeFiles/probe_tests.dir/probe/probe_property_test.cc.o"
  "CMakeFiles/probe_tests.dir/probe/probe_property_test.cc.o.d"
  "CMakeFiles/probe_tests.dir/probe/robust_test.cc.o"
  "CMakeFiles/probe_tests.dir/probe/robust_test.cc.o.d"
  "CMakeFiles/probe_tests.dir/probe/vact_test.cc.o"
  "CMakeFiles/probe_tests.dir/probe/vact_test.cc.o.d"
  "CMakeFiles/probe_tests.dir/probe/vcap_test.cc.o"
  "CMakeFiles/probe_tests.dir/probe/vcap_test.cc.o.d"
  "CMakeFiles/probe_tests.dir/probe/vtop_test.cc.o"
  "CMakeFiles/probe_tests.dir/probe/vtop_test.cc.o.d"
  "probe_tests"
  "probe_tests.pdb"
  "probe_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
