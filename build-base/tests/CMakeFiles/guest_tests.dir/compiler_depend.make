# Empty compiler generated dependencies file for guest_tests.
# This may be replaced when dependencies are built.
