file(REMOVE_RECURSE
  "CMakeFiles/guest_tests.dir/guest/cpumask_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/cpumask_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/eevdf_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/eevdf_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/kernel_advanced_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/kernel_advanced_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/kernel_basic_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/kernel_basic_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/kernel_property_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/kernel_property_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/nice_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/nice_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/pelt_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/pelt_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/placement_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/placement_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/runqueue_equivalence_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/runqueue_equivalence_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/runqueue_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/runqueue_test.cc.o.d"
  "CMakeFiles/guest_tests.dir/guest/vm_wrapper_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/vm_wrapper_test.cc.o.d"
  "guest_tests"
  "guest_tests.pdb"
  "guest_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
