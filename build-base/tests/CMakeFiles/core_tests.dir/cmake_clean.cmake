file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/autotune_test.cc.o"
  "CMakeFiles/core_tests.dir/core/autotune_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/bvs_test.cc.o"
  "CMakeFiles/core_tests.dir/core/bvs_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/integration_test.cc.o"
  "CMakeFiles/core_tests.dir/core/integration_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/ivh_test.cc.o"
  "CMakeFiles/core_tests.dir/core/ivh_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/rwc_vsched_test.cc.o"
  "CMakeFiles/core_tests.dir/core/rwc_vsched_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/stress_test.cc.o"
  "CMakeFiles/core_tests.dir/core/stress_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
