file(REMOVE_RECURSE
  "CMakeFiles/host_tests.dir/host/bandwidth_live_test.cc.o"
  "CMakeFiles/host_tests.dir/host/bandwidth_live_test.cc.o.d"
  "CMakeFiles/host_tests.dir/host/bandwidth_test.cc.o"
  "CMakeFiles/host_tests.dir/host/bandwidth_test.cc.o.d"
  "CMakeFiles/host_tests.dir/host/cpu_sched_test.cc.o"
  "CMakeFiles/host_tests.dir/host/cpu_sched_test.cc.o.d"
  "CMakeFiles/host_tests.dir/host/host_property_test.cc.o"
  "CMakeFiles/host_tests.dir/host/host_property_test.cc.o.d"
  "CMakeFiles/host_tests.dir/host/machine_test.cc.o"
  "CMakeFiles/host_tests.dir/host/machine_test.cc.o.d"
  "CMakeFiles/host_tests.dir/host/topology_test.cc.o"
  "CMakeFiles/host_tests.dir/host/topology_test.cc.o.d"
  "host_tests"
  "host_tests.pdb"
  "host_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
