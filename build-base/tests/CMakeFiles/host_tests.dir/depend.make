# Empty dependencies file for host_tests.
# This may be replaced when dependencies are built.
