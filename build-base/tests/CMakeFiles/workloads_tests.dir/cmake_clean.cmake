file(REMOVE_RECURSE
  "CMakeFiles/workloads_tests.dir/workloads/workload_property_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/workload_property_test.cc.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/workloads_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/workloads_test.cc.o.d"
  "workloads_tests"
  "workloads_tests.pdb"
  "workloads_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
