# Empty compiler generated dependencies file for vsched_cluster.
# This may be replaced when dependencies are built.
