file(REMOVE_RECURSE
  "libvsched_cluster.a"
)
