file(REMOVE_RECURSE
  "CMakeFiles/vsched_cluster.dir/fleet.cc.o"
  "CMakeFiles/vsched_cluster.dir/fleet.cc.o.d"
  "CMakeFiles/vsched_cluster.dir/fleet_spec.cc.o"
  "CMakeFiles/vsched_cluster.dir/fleet_spec.cc.o.d"
  "CMakeFiles/vsched_cluster.dir/placement.cc.o"
  "CMakeFiles/vsched_cluster.dir/placement.cc.o.d"
  "libvsched_cluster.a"
  "libvsched_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
