
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/audit.cc" "src/base/CMakeFiles/vsched_base.dir/audit.cc.o" "gcc" "src/base/CMakeFiles/vsched_base.dir/audit.cc.o.d"
  "/root/repo/src/base/check.cc" "src/base/CMakeFiles/vsched_base.dir/check.cc.o" "gcc" "src/base/CMakeFiles/vsched_base.dir/check.cc.o.d"
  "/root/repo/src/base/decay.cc" "src/base/CMakeFiles/vsched_base.dir/decay.cc.o" "gcc" "src/base/CMakeFiles/vsched_base.dir/decay.cc.o.d"
  "/root/repo/src/base/log.cc" "src/base/CMakeFiles/vsched_base.dir/log.cc.o" "gcc" "src/base/CMakeFiles/vsched_base.dir/log.cc.o.d"
  "/root/repo/src/base/perf_counters.cc" "src/base/CMakeFiles/vsched_base.dir/perf_counters.cc.o" "gcc" "src/base/CMakeFiles/vsched_base.dir/perf_counters.cc.o.d"
  "/root/repo/src/base/time.cc" "src/base/CMakeFiles/vsched_base.dir/time.cc.o" "gcc" "src/base/CMakeFiles/vsched_base.dir/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
