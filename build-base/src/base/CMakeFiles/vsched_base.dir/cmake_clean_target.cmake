file(REMOVE_RECURSE
  "libvsched_base.a"
)
