file(REMOVE_RECURSE
  "CMakeFiles/vsched_base.dir/audit.cc.o"
  "CMakeFiles/vsched_base.dir/audit.cc.o.d"
  "CMakeFiles/vsched_base.dir/check.cc.o"
  "CMakeFiles/vsched_base.dir/check.cc.o.d"
  "CMakeFiles/vsched_base.dir/decay.cc.o"
  "CMakeFiles/vsched_base.dir/decay.cc.o.d"
  "CMakeFiles/vsched_base.dir/log.cc.o"
  "CMakeFiles/vsched_base.dir/log.cc.o.d"
  "CMakeFiles/vsched_base.dir/perf_counters.cc.o"
  "CMakeFiles/vsched_base.dir/perf_counters.cc.o.d"
  "CMakeFiles/vsched_base.dir/time.cc.o"
  "CMakeFiles/vsched_base.dir/time.cc.o.d"
  "libvsched_base.a"
  "libvsched_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
