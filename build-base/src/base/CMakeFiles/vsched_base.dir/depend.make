# Empty dependencies file for vsched_base.
# This may be replaced when dependencies are built.
