# Empty dependencies file for vsched_fault.
# This may be replaced when dependencies are built.
