file(REMOVE_RECURSE
  "libvsched_fault.a"
)
