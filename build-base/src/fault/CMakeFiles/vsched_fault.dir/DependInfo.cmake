
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/degradation.cc" "src/fault/CMakeFiles/vsched_fault.dir/degradation.cc.o" "gcc" "src/fault/CMakeFiles/vsched_fault.dir/degradation.cc.o.d"
  "/root/repo/src/fault/fault_injector.cc" "src/fault/CMakeFiles/vsched_fault.dir/fault_injector.cc.o" "gcc" "src/fault/CMakeFiles/vsched_fault.dir/fault_injector.cc.o.d"
  "/root/repo/src/fault/fault_plan.cc" "src/fault/CMakeFiles/vsched_fault.dir/fault_plan.cc.o" "gcc" "src/fault/CMakeFiles/vsched_fault.dir/fault_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-base/src/base/CMakeFiles/vsched_base.dir/DependInfo.cmake"
  "/root/repo/build-base/src/sim/CMakeFiles/vsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-base/src/host/CMakeFiles/vsched_host.dir/DependInfo.cmake"
  "/root/repo/build-base/src/guest/CMakeFiles/vsched_guest.dir/DependInfo.cmake"
  "/root/repo/build-base/src/stats/CMakeFiles/vsched_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
