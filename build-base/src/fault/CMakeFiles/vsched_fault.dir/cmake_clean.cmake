file(REMOVE_RECURSE
  "CMakeFiles/vsched_fault.dir/degradation.cc.o"
  "CMakeFiles/vsched_fault.dir/degradation.cc.o.d"
  "CMakeFiles/vsched_fault.dir/fault_injector.cc.o"
  "CMakeFiles/vsched_fault.dir/fault_injector.cc.o.d"
  "CMakeFiles/vsched_fault.dir/fault_plan.cc.o"
  "CMakeFiles/vsched_fault.dir/fault_plan.cc.o.d"
  "libvsched_fault.a"
  "libvsched_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
