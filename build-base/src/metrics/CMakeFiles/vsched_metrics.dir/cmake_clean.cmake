file(REMOVE_RECURSE
  "CMakeFiles/vsched_metrics.dir/activity_trace.cc.o"
  "CMakeFiles/vsched_metrics.dir/activity_trace.cc.o.d"
  "CMakeFiles/vsched_metrics.dir/experiment.cc.o"
  "CMakeFiles/vsched_metrics.dir/experiment.cc.o.d"
  "CMakeFiles/vsched_metrics.dir/scenario.cc.o"
  "CMakeFiles/vsched_metrics.dir/scenario.cc.o.d"
  "libvsched_metrics.a"
  "libvsched_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
