file(REMOVE_RECURSE
  "libvsched_metrics.a"
)
