# Empty compiler generated dependencies file for vsched_metrics.
# This may be replaced when dependencies are built.
