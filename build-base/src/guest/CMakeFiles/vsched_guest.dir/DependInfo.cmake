
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/guest_kernel.cc" "src/guest/CMakeFiles/vsched_guest.dir/guest_kernel.cc.o" "gcc" "src/guest/CMakeFiles/vsched_guest.dir/guest_kernel.cc.o.d"
  "/root/repo/src/guest/guest_vcpu.cc" "src/guest/CMakeFiles/vsched_guest.dir/guest_vcpu.cc.o" "gcc" "src/guest/CMakeFiles/vsched_guest.dir/guest_vcpu.cc.o.d"
  "/root/repo/src/guest/pelt.cc" "src/guest/CMakeFiles/vsched_guest.dir/pelt.cc.o" "gcc" "src/guest/CMakeFiles/vsched_guest.dir/pelt.cc.o.d"
  "/root/repo/src/guest/runqueue.cc" "src/guest/CMakeFiles/vsched_guest.dir/runqueue.cc.o" "gcc" "src/guest/CMakeFiles/vsched_guest.dir/runqueue.cc.o.d"
  "/root/repo/src/guest/task.cc" "src/guest/CMakeFiles/vsched_guest.dir/task.cc.o" "gcc" "src/guest/CMakeFiles/vsched_guest.dir/task.cc.o.d"
  "/root/repo/src/guest/vm.cc" "src/guest/CMakeFiles/vsched_guest.dir/vm.cc.o" "gcc" "src/guest/CMakeFiles/vsched_guest.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-base/src/base/CMakeFiles/vsched_base.dir/DependInfo.cmake"
  "/root/repo/build-base/src/sim/CMakeFiles/vsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-base/src/stats/CMakeFiles/vsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-base/src/host/CMakeFiles/vsched_host.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
