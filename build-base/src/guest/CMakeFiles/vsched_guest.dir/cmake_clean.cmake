file(REMOVE_RECURSE
  "CMakeFiles/vsched_guest.dir/guest_kernel.cc.o"
  "CMakeFiles/vsched_guest.dir/guest_kernel.cc.o.d"
  "CMakeFiles/vsched_guest.dir/guest_vcpu.cc.o"
  "CMakeFiles/vsched_guest.dir/guest_vcpu.cc.o.d"
  "CMakeFiles/vsched_guest.dir/pelt.cc.o"
  "CMakeFiles/vsched_guest.dir/pelt.cc.o.d"
  "CMakeFiles/vsched_guest.dir/runqueue.cc.o"
  "CMakeFiles/vsched_guest.dir/runqueue.cc.o.d"
  "CMakeFiles/vsched_guest.dir/task.cc.o"
  "CMakeFiles/vsched_guest.dir/task.cc.o.d"
  "CMakeFiles/vsched_guest.dir/vm.cc.o"
  "CMakeFiles/vsched_guest.dir/vm.cc.o.d"
  "libvsched_guest.a"
  "libvsched_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
