file(REMOVE_RECURSE
  "libvsched_guest.a"
)
