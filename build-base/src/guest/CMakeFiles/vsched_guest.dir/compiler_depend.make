# Empty compiler generated dependencies file for vsched_guest.
# This may be replaced when dependencies are built.
