# Empty compiler generated dependencies file for vsched_probe.
# This may be replaced when dependencies are built.
