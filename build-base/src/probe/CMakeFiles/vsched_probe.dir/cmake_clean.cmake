file(REMOVE_RECURSE
  "CMakeFiles/vsched_probe.dir/pair_probe.cc.o"
  "CMakeFiles/vsched_probe.dir/pair_probe.cc.o.d"
  "CMakeFiles/vsched_probe.dir/robust.cc.o"
  "CMakeFiles/vsched_probe.dir/robust.cc.o.d"
  "CMakeFiles/vsched_probe.dir/vact.cc.o"
  "CMakeFiles/vsched_probe.dir/vact.cc.o.d"
  "CMakeFiles/vsched_probe.dir/vcap.cc.o"
  "CMakeFiles/vsched_probe.dir/vcap.cc.o.d"
  "CMakeFiles/vsched_probe.dir/vtop.cc.o"
  "CMakeFiles/vsched_probe.dir/vtop.cc.o.d"
  "libvsched_probe.a"
  "libvsched_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
