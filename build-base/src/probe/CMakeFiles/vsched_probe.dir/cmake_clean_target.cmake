file(REMOVE_RECURSE
  "libvsched_probe.a"
)
