# Empty compiler generated dependencies file for vsched_runner.
# This may be replaced when dependencies are built.
