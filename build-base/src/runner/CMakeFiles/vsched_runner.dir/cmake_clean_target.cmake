file(REMOVE_RECURSE
  "libvsched_runner.a"
)
