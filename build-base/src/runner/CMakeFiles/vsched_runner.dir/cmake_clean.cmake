file(REMOVE_RECURSE
  "CMakeFiles/vsched_runner.dir/report.cc.o"
  "CMakeFiles/vsched_runner.dir/report.cc.o.d"
  "CMakeFiles/vsched_runner.dir/result_sink.cc.o"
  "CMakeFiles/vsched_runner.dir/result_sink.cc.o.d"
  "CMakeFiles/vsched_runner.dir/resume.cc.o"
  "CMakeFiles/vsched_runner.dir/resume.cc.o.d"
  "CMakeFiles/vsched_runner.dir/runner.cc.o"
  "CMakeFiles/vsched_runner.dir/runner.cc.o.d"
  "CMakeFiles/vsched_runner.dir/spec.cc.o"
  "CMakeFiles/vsched_runner.dir/spec.cc.o.d"
  "CMakeFiles/vsched_runner.dir/thread_pool.cc.o"
  "CMakeFiles/vsched_runner.dir/thread_pool.cc.o.d"
  "libvsched_runner.a"
  "libvsched_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
