# Empty compiler generated dependencies file for vsched_sim.
# This may be replaced when dependencies are built.
