file(REMOVE_RECURSE
  "libvsched_sim.a"
)
