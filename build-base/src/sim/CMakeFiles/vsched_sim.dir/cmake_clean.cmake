file(REMOVE_RECURSE
  "CMakeFiles/vsched_sim.dir/event_queue.cc.o"
  "CMakeFiles/vsched_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/vsched_sim.dir/rng.cc.o"
  "CMakeFiles/vsched_sim.dir/rng.cc.o.d"
  "CMakeFiles/vsched_sim.dir/simulation.cc.o"
  "CMakeFiles/vsched_sim.dir/simulation.cc.o.d"
  "CMakeFiles/vsched_sim.dir/timer_wheel.cc.o"
  "CMakeFiles/vsched_sim.dir/timer_wheel.cc.o.d"
  "libvsched_sim.a"
  "libvsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
