# Empty compiler generated dependencies file for vsched_stats.
# This may be replaced when dependencies are built.
