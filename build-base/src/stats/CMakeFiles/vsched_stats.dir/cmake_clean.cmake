file(REMOVE_RECURSE
  "CMakeFiles/vsched_stats.dir/stats.cc.o"
  "CMakeFiles/vsched_stats.dir/stats.cc.o.d"
  "libvsched_stats.a"
  "libvsched_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
