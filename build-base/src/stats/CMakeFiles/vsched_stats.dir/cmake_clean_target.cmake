file(REMOVE_RECURSE
  "libvsched_stats.a"
)
