# Empty dependencies file for vsched_workloads.
# This may be replaced when dependencies are built.
