
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/catalog.cc" "src/workloads/CMakeFiles/vsched_workloads.dir/catalog.cc.o" "gcc" "src/workloads/CMakeFiles/vsched_workloads.dir/catalog.cc.o.d"
  "/root/repo/src/workloads/latency_app.cc" "src/workloads/CMakeFiles/vsched_workloads.dir/latency_app.cc.o" "gcc" "src/workloads/CMakeFiles/vsched_workloads.dir/latency_app.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/workloads/CMakeFiles/vsched_workloads.dir/micro.cc.o" "gcc" "src/workloads/CMakeFiles/vsched_workloads.dir/micro.cc.o.d"
  "/root/repo/src/workloads/throughput_app.cc" "src/workloads/CMakeFiles/vsched_workloads.dir/throughput_app.cc.o" "gcc" "src/workloads/CMakeFiles/vsched_workloads.dir/throughput_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-base/src/base/CMakeFiles/vsched_base.dir/DependInfo.cmake"
  "/root/repo/build-base/src/sim/CMakeFiles/vsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-base/src/stats/CMakeFiles/vsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-base/src/guest/CMakeFiles/vsched_guest.dir/DependInfo.cmake"
  "/root/repo/build-base/src/host/CMakeFiles/vsched_host.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
