file(REMOVE_RECURSE
  "CMakeFiles/vsched_workloads.dir/catalog.cc.o"
  "CMakeFiles/vsched_workloads.dir/catalog.cc.o.d"
  "CMakeFiles/vsched_workloads.dir/latency_app.cc.o"
  "CMakeFiles/vsched_workloads.dir/latency_app.cc.o.d"
  "CMakeFiles/vsched_workloads.dir/micro.cc.o"
  "CMakeFiles/vsched_workloads.dir/micro.cc.o.d"
  "CMakeFiles/vsched_workloads.dir/throughput_app.cc.o"
  "CMakeFiles/vsched_workloads.dir/throughput_app.cc.o.d"
  "libvsched_workloads.a"
  "libvsched_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
