file(REMOVE_RECURSE
  "libvsched_workloads.a"
)
