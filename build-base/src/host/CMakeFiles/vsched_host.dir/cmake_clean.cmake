file(REMOVE_RECURSE
  "CMakeFiles/vsched_host.dir/cpu_sched.cc.o"
  "CMakeFiles/vsched_host.dir/cpu_sched.cc.o.d"
  "CMakeFiles/vsched_host.dir/host_entity.cc.o"
  "CMakeFiles/vsched_host.dir/host_entity.cc.o.d"
  "CMakeFiles/vsched_host.dir/machine.cc.o"
  "CMakeFiles/vsched_host.dir/machine.cc.o.d"
  "CMakeFiles/vsched_host.dir/stressor.cc.o"
  "CMakeFiles/vsched_host.dir/stressor.cc.o.d"
  "CMakeFiles/vsched_host.dir/topology.cc.o"
  "CMakeFiles/vsched_host.dir/topology.cc.o.d"
  "libvsched_host.a"
  "libvsched_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
