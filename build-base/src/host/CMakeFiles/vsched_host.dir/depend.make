# Empty dependencies file for vsched_host.
# This may be replaced when dependencies are built.
