
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/cpu_sched.cc" "src/host/CMakeFiles/vsched_host.dir/cpu_sched.cc.o" "gcc" "src/host/CMakeFiles/vsched_host.dir/cpu_sched.cc.o.d"
  "/root/repo/src/host/host_entity.cc" "src/host/CMakeFiles/vsched_host.dir/host_entity.cc.o" "gcc" "src/host/CMakeFiles/vsched_host.dir/host_entity.cc.o.d"
  "/root/repo/src/host/machine.cc" "src/host/CMakeFiles/vsched_host.dir/machine.cc.o" "gcc" "src/host/CMakeFiles/vsched_host.dir/machine.cc.o.d"
  "/root/repo/src/host/stressor.cc" "src/host/CMakeFiles/vsched_host.dir/stressor.cc.o" "gcc" "src/host/CMakeFiles/vsched_host.dir/stressor.cc.o.d"
  "/root/repo/src/host/topology.cc" "src/host/CMakeFiles/vsched_host.dir/topology.cc.o" "gcc" "src/host/CMakeFiles/vsched_host.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-base/src/base/CMakeFiles/vsched_base.dir/DependInfo.cmake"
  "/root/repo/build-base/src/sim/CMakeFiles/vsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-base/src/stats/CMakeFiles/vsched_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
