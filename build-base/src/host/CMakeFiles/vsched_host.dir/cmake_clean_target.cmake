file(REMOVE_RECURSE
  "libvsched_host.a"
)
