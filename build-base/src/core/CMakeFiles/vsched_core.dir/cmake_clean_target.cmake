file(REMOVE_RECURSE
  "libvsched_core.a"
)
