file(REMOVE_RECURSE
  "CMakeFiles/vsched_core.dir/autotune.cc.o"
  "CMakeFiles/vsched_core.dir/autotune.cc.o.d"
  "CMakeFiles/vsched_core.dir/bvs.cc.o"
  "CMakeFiles/vsched_core.dir/bvs.cc.o.d"
  "CMakeFiles/vsched_core.dir/ivh.cc.o"
  "CMakeFiles/vsched_core.dir/ivh.cc.o.d"
  "CMakeFiles/vsched_core.dir/rwc.cc.o"
  "CMakeFiles/vsched_core.dir/rwc.cc.o.d"
  "CMakeFiles/vsched_core.dir/vsched.cc.o"
  "CMakeFiles/vsched_core.dir/vsched.cc.o.d"
  "libvsched_core.a"
  "libvsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
