
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autotune.cc" "src/core/CMakeFiles/vsched_core.dir/autotune.cc.o" "gcc" "src/core/CMakeFiles/vsched_core.dir/autotune.cc.o.d"
  "/root/repo/src/core/bvs.cc" "src/core/CMakeFiles/vsched_core.dir/bvs.cc.o" "gcc" "src/core/CMakeFiles/vsched_core.dir/bvs.cc.o.d"
  "/root/repo/src/core/ivh.cc" "src/core/CMakeFiles/vsched_core.dir/ivh.cc.o" "gcc" "src/core/CMakeFiles/vsched_core.dir/ivh.cc.o.d"
  "/root/repo/src/core/rwc.cc" "src/core/CMakeFiles/vsched_core.dir/rwc.cc.o" "gcc" "src/core/CMakeFiles/vsched_core.dir/rwc.cc.o.d"
  "/root/repo/src/core/vsched.cc" "src/core/CMakeFiles/vsched_core.dir/vsched.cc.o" "gcc" "src/core/CMakeFiles/vsched_core.dir/vsched.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-base/src/base/CMakeFiles/vsched_base.dir/DependInfo.cmake"
  "/root/repo/build-base/src/sim/CMakeFiles/vsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-base/src/stats/CMakeFiles/vsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-base/src/guest/CMakeFiles/vsched_guest.dir/DependInfo.cmake"
  "/root/repo/build-base/src/host/CMakeFiles/vsched_host.dir/DependInfo.cmake"
  "/root/repo/build-base/src/fault/CMakeFiles/vsched_fault.dir/DependInfo.cmake"
  "/root/repo/build-base/src/probe/CMakeFiles/vsched_probe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
