# Empty dependencies file for vsched_core.
# This may be replaced when dependencies are built.
