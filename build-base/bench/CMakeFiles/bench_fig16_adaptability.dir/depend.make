# Empty dependencies file for bench_fig16_adaptability.
# This may be replaced when dependencies are built.
