file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_adaptability.dir/bench_fig16_adaptability.cc.o"
  "CMakeFiles/bench_fig16_adaptability.dir/bench_fig16_adaptability.cc.o.d"
  "bench_fig16_adaptability"
  "bench_fig16_adaptability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_adaptability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
