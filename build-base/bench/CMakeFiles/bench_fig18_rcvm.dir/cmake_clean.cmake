file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_rcvm.dir/bench_fig18_rcvm.cc.o"
  "CMakeFiles/bench_fig18_rcvm.dir/bench_fig18_rcvm.cc.o.d"
  "bench_fig18_rcvm"
  "bench_fig18_rcvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_rcvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
