# Empty compiler generated dependencies file for bench_fig04_work_conservation.
# This may be replaced when dependencies are built.
