file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_work_conservation.dir/bench_fig04_work_conservation.cc.o"
  "CMakeFiles/bench_fig04_work_conservation.dir/bench_fig04_work_conservation.cc.o.d"
  "bench_fig04_work_conservation"
  "bench_fig04_work_conservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_work_conservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
