file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_hpvm.dir/bench_fig19_hpvm.cc.o"
  "CMakeFiles/bench_fig19_hpvm.dir/bench_fig19_hpvm.cc.o.d"
  "bench_fig19_hpvm"
  "bench_fig19_hpvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_hpvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
