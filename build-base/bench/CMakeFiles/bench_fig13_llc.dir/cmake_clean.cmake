file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_llc.dir/bench_fig13_llc.cc.o"
  "CMakeFiles/bench_fig13_llc.dir/bench_fig13_llc.cc.o.d"
  "bench_fig13_llc"
  "bench_fig13_llc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
