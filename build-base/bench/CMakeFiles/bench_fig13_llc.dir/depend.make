# Empty dependencies file for bench_fig13_llc.
# This may be replaced when dependencies are built.
