file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_ivh.dir/bench_fig15_ivh.cc.o"
  "CMakeFiles/bench_fig15_ivh.dir/bench_fig15_ivh.cc.o.d"
  "bench_fig15_ivh"
  "bench_fig15_ivh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ivh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
