# Empty dependencies file for bench_fig15_ivh.
# This may be replaced when dependencies are built.
