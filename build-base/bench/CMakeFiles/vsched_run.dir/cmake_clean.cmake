file(REMOVE_RECURSE
  "CMakeFiles/vsched_run.dir/vsched_run.cc.o"
  "CMakeFiles/vsched_run.dir/vsched_run.cc.o.d"
  "vsched_run"
  "vsched_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
