# Empty compiler generated dependencies file for vsched_run.
# This may be replaced when dependencies are built.
