file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vprobers.dir/bench_fig10_vprobers.cc.o"
  "CMakeFiles/bench_fig10_vprobers.dir/bench_fig10_vprobers.cc.o.d"
  "bench_fig10_vprobers"
  "bench_fig10_vprobers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vprobers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
