# Empty dependencies file for bench_fig10_vprobers.
# This may be replaced when dependencies are built.
