# Empty dependencies file for bench_fig03_stalled_task.
# This may be replaced when dependencies are built.
