file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_stalled_task.dir/bench_fig03_stalled_task.cc.o"
  "CMakeFiles/bench_fig03_stalled_task.dir/bench_fig03_stalled_task.cc.o.d"
  "bench_fig03_stalled_task"
  "bench_fig03_stalled_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_stalled_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
