file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vcap.dir/bench_fig11_vcap.cc.o"
  "CMakeFiles/bench_fig11_vcap.dir/bench_fig11_vcap.cc.o.d"
  "bench_fig11_vcap"
  "bench_fig11_vcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
