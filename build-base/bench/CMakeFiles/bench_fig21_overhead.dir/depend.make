# Empty dependencies file for bench_fig21_overhead.
# This may be replaced when dependencies are built.
