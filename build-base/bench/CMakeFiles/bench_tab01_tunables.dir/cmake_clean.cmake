file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_tunables.dir/bench_tab01_tunables.cc.o"
  "CMakeFiles/bench_tab01_tunables.dir/bench_tab01_tunables.cc.o.d"
  "bench_tab01_tunables"
  "bench_tab01_tunables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_tunables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
