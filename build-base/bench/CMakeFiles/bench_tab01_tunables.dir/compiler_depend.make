# Empty compiler generated dependencies file for bench_tab01_tunables.
# This may be replaced when dependencies are built.
