file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_bvs.dir/bench_fig14_bvs.cc.o"
  "CMakeFiles/bench_fig14_bvs.dir/bench_fig14_bvs.cc.o.d"
  "bench_fig14_bvs"
  "bench_fig14_bvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_bvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
