# Empty dependencies file for bench_fig12_smt.
# This may be replaced when dependencies are built.
