file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_smt.dir/bench_fig12_smt.cc.o"
  "CMakeFiles/bench_fig12_smt.dir/bench_fig12_smt.cc.o.d"
  "bench_fig12_smt"
  "bench_fig12_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
