file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_multitenant.dir/bench_fig17_multitenant.cc.o"
  "CMakeFiles/bench_fig17_multitenant.dir/bench_fig17_multitenant.cc.o.d"
  "bench_fig17_multitenant"
  "bench_fig17_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
