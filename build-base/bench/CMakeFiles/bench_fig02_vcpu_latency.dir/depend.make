# Empty dependencies file for bench_fig02_vcpu_latency.
# This may be replaced when dependencies are built.
