# Empty compiler generated dependencies file for bench_tab02_vtop_time.
# This may be replaced when dependencies are built.
