file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_vtop_time.dir/bench_tab02_vtop_time.cc.o"
  "CMakeFiles/bench_tab02_vtop_time.dir/bench_tab02_vtop_time.cc.o.d"
  "bench_tab02_vtop_time"
  "bench_tab02_vtop_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_vtop_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
