# Empty compiler generated dependencies file for batch_analytics.
# This may be replaced when dependencies are built.
