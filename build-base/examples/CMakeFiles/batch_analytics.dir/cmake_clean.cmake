file(REMOVE_RECURSE
  "CMakeFiles/batch_analytics.dir/batch_analytics.cpp.o"
  "CMakeFiles/batch_analytics.dir/batch_analytics.cpp.o.d"
  "batch_analytics"
  "batch_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
