# Empty compiler generated dependencies file for latency_server.
# This may be replaced when dependencies are built.
