file(REMOVE_RECURSE
  "CMakeFiles/latency_server.dir/latency_server.cpp.o"
  "CMakeFiles/latency_server.dir/latency_server.cpp.o.d"
  "latency_server"
  "latency_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
