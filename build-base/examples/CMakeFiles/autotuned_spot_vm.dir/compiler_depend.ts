# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for autotuned_spot_vm.
