file(REMOVE_RECURSE
  "CMakeFiles/autotuned_spot_vm.dir/autotuned_spot_vm.cpp.o"
  "CMakeFiles/autotuned_spot_vm.dir/autotuned_spot_vm.cpp.o.d"
  "autotuned_spot_vm"
  "autotuned_spot_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotuned_spot_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
