# Empty compiler generated dependencies file for autotuned_spot_vm.
# This may be replaced when dependencies are built.
