file(REMOVE_RECURSE
  "CMakeFiles/vsched_lint_lib.dir/analyzer.cc.o"
  "CMakeFiles/vsched_lint_lib.dir/analyzer.cc.o.d"
  "CMakeFiles/vsched_lint_lib.dir/lexer.cc.o"
  "CMakeFiles/vsched_lint_lib.dir/lexer.cc.o.d"
  "CMakeFiles/vsched_lint_lib.dir/lint.cc.o"
  "CMakeFiles/vsched_lint_lib.dir/lint.cc.o.d"
  "libvsched_lint_lib.a"
  "libvsched_lint_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_lint_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
