file(REMOVE_RECURSE
  "libvsched_lint_lib.a"
)
