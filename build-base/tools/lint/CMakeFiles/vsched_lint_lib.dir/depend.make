# Empty dependencies file for vsched_lint_lib.
# This may be replaced when dependencies are built.
