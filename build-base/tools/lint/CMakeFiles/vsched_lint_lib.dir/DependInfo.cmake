
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/lint/analyzer.cc" "tools/lint/CMakeFiles/vsched_lint_lib.dir/analyzer.cc.o" "gcc" "tools/lint/CMakeFiles/vsched_lint_lib.dir/analyzer.cc.o.d"
  "/root/repo/tools/lint/lexer.cc" "tools/lint/CMakeFiles/vsched_lint_lib.dir/lexer.cc.o" "gcc" "tools/lint/CMakeFiles/vsched_lint_lib.dir/lexer.cc.o.d"
  "/root/repo/tools/lint/lint.cc" "tools/lint/CMakeFiles/vsched_lint_lib.dir/lint.cc.o" "gcc" "tools/lint/CMakeFiles/vsched_lint_lib.dir/lint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
