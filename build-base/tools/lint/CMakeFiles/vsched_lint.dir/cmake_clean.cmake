file(REMOVE_RECURSE
  "CMakeFiles/vsched_lint.dir/vsched_lint_main.cc.o"
  "CMakeFiles/vsched_lint.dir/vsched_lint_main.cc.o.d"
  "vsched_lint"
  "vsched_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
