# Empty dependencies file for vsched_lint.
# This may be replaced when dependencies are built.
