# CMake generated Testfile for 
# Source directory: /root/repo/tools/lint
# Build directory: /root/repo/build-base/tools/lint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(vsched_lint_src "/root/repo/build-base/tools/lint/vsched_lint" "--json" "/root/repo/build-base/lint_findings.json" "/root/repo/src")
set_tests_properties(vsched_lint_src PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/lint/CMakeLists.txt;12;add_test;/root/repo/tools/lint/CMakeLists.txt;0;")
